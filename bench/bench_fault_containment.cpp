/**
 * @file
 * Fault containment, measured rather than asserted:
 *
 *  1. Overhead.  The Memory/OsEmulator fault hooks cost one never-taken
 *     branch when detached; this phase runs the same fleet batch with
 *     injection fully off (null hooks, the production path) and with an
 *     armed-but-never-firing plan (hooks installed, worst honest case)
 *     and reports the throughput delta.  Best-of-N fleet runs per
 *     configuration keep scheduler noise out of the ratio.
 *
 *  2. Detection.  Seeded plans drawn from the *guaranteed-detectable*
 *     menu (undecodable-instruction corruption, address-limit PC flips,
 *     checkpoint bit-flips/truncation) are injected across every ISA on
 *     both back ends, through the full SimFleet containment path.  A
 *     fault counts as detected if the job faults (RunStatus::Fault) or
 *     is quarantined (CkptError etc.); the rate must be 1.0 -- the
 *     detection machinery, not luck, catches every one.
 *
 * Emits BENCH_fault_containment.json; tools/check_bench_json.py
 * enforces the overhead ceiling and the detection-rate floor.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "ckpt/checkpoint.hpp"
#include "fault/fault.hpp"
#include "parallel/fleet.hpp"

using namespace onespec;
using namespace onespec::bench;
using onespec::fault::FaultOp;
using onespec::fault::FaultPlan;
using onespec::parallel::FleetJob;
using onespec::parallel::FleetReport;
using onespec::parallel::SimFleet;

namespace {

std::vector<FleetJob>
makeJobs(const std::string &buildset, uint64_t max_instrs,
         const FaultPlan *plan)
{
    std::vector<FleetJob> jobs;
    for (const auto &isa : shippedIsas()) {
        IsaWorkloads &w = workloadsFor(isa);
        for (const auto &[kname, prog] : w.programs) {
            FleetJob j;
            j.spec = w.spec.get();
            j.program = &prog;
            j.buildset = buildset;
            j.maxInstrs = max_instrs;
            j.name = isa + "/" + kname;
            j.faultPlan = plan;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

/** Best aggregate MIPS over @p repeats fleet runs of @p jobs. */
double
bestMips(SimFleet &fleet, const std::vector<FleetJob> &jobs, int repeats)
{
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
        FleetReport rep = fleet.run(jobs);
        for (const auto &res : rep.results) {
            if (res.quarantined || res.run.status == RunStatus::Fault) {
                std::fprintf(stderr, "overhead job failed: %s\n",
                             res.error.c_str());
                std::exit(1);
            }
        }
        best = std::max(best, rep.aggregateMips());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t max_instrs = 2'000'000;
    unsigned seeds_per_case = 4;
    int repeats = 3;
    std::string buildset = "BlockMinNo";
    std::string json_path;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            max_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--buildset") == 0 && i + 1 < argc) {
            buildset = argv[++i];
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            max_instrs = 250'000;
            seeds_per_case = 2;
            repeats = 2;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    BenchReport report("fault_containment");
    report.setParam("buildset", stats::Json(buildset));
    report.setParam("max_instrs_per_job", stats::Json(max_instrs));
    report.setParam("smoke", stats::Json(smoke));

    // ---- Phase 1: overhead of the containment layer -------------------
    std::printf("FAULT CONTAINMENT: hook overhead + detection rate\n\n");

    std::vector<FleetJob> off_jobs = makeJobs(buildset, max_instrs, nullptr);

    // Armed: hooks installed, one event that can never fire (trigger far
    // past any access count this workload reaches).
    FaultPlan armed;
    armed.events.push_back({FaultOp::MemReadBitFlip,
                            ~uint64_t{0} >> 1, 0, 0, false});
    std::vector<FleetJob> armed_jobs =
        makeJobs(buildset, max_instrs, &armed);

    SimFleet fleet(0);
    double mips_off = bestMips(fleet, off_jobs, repeats);
    double mips_armed = bestMips(fleet, armed_jobs, repeats);
    double overhead_pct =
        mips_armed > 0 ? (mips_off / mips_armed - 1.0) * 100.0 : 0.0;
    std::printf("injection off:   %10.2f MIPS\n", mips_off);
    std::printf("injection armed: %10.2f MIPS  (overhead %.2f%%)\n\n",
                mips_armed, overhead_pct);

    // ---- Phase 2: detection rate --------------------------------------
    // Healthy reference hash per (isa, backend), then seeded plans from
    // the guaranteed-detectable menu against the same job.
    const std::vector<FaultOp> state_menu = {FaultOp::CorruptInstr,
                                             FaultOp::PcBitFlip};
    uint64_t injected = 0, detected = 0;
    uint64_t state_faults = 0, container_faults = 0;

    std::printf("%-10s %-10s %8s %10s\n", "isa", "backend", "injected",
                "detected");
    for (const auto &isa : shippedIsas()) {
        IsaWorkloads &w = workloadsFor(isa);
        const Program &prog = w.programs.front().second;
        for (bool interp : {true, false}) {
            uint64_t inj_here = 0, det_here = 0;

            // State-class faults through the fleet's chunked run path.
            std::vector<FaultPlan> plans;
            std::vector<FleetJob> jobs;
            for (unsigned s = 0; s < seeds_per_case; ++s) {
                plans.push_back(FaultPlan::random(
                    0x9000 + s, std::max<uint64_t>(max_instrs / 2, 2),
                    state_menu, 1));
            }
            for (unsigned s = 0; s < seeds_per_case; ++s) {
                FleetJob j;
                j.spec = w.spec.get();
                j.program = &prog;
                j.buildset = buildset;
                j.maxInstrs = max_instrs;
                j.name = isa + "/seed" + std::to_string(s);
                j.useInterp = interp;
                j.faultPlan = &plans[s];
                jobs.push_back(std::move(j));
            }
            FleetReport rep = fleet.run(jobs);
            for (const auto &res : rep.results) {
                ++inj_here;
                ++state_faults;
                det_here += res.quarantined ||
                            res.run.status == RunStatus::Fault;
            }

            // Container-class faults: a checkpoint captured mid-run,
            // then restored from a corrupted serialization.
            SimContext cctx(*w.spec);
            cctx.load(prog);
            auto csim = interp
                ? std::unique_ptr<FunctionalSimulator>(
                      makeInterpSimulator(cctx, buildset))
                : SimRegistry::instance().create(cctx, buildset);
            csim->run(max_instrs / 2);
            std::vector<uint8_t> image = ckpt::encode(ckpt::capture(cctx));
            std::vector<FaultPlan> cplans;
            for (unsigned s = 0; s < seeds_per_case; ++s) {
                cplans.push_back(FaultPlan::random(
                    0x5000 + s, image.size(),
                    {FaultOp::CkptBitFlip, FaultOp::CkptTruncate}, 1));
            }
            std::vector<FleetJob> cjobs;
            for (unsigned s = 0; s < seeds_per_case; ++s) {
                FleetJob j;
                j.spec = w.spec.get();
                j.program = &prog;
                j.buildset = buildset;
                j.maxInstrs = max_instrs;
                j.name = isa + "/ckpt" + std::to_string(s);
                j.useInterp = interp;
                j.restoreImages.push_back(&image);
                j.faultPlan = &cplans[s];
                cjobs.push_back(std::move(j));
            }
            FleetReport crep = fleet.run(cjobs);
            for (const auto &res : crep.results) {
                ++inj_here;
                ++container_faults;
                det_here += res.quarantined ||
                            res.run.status == RunStatus::Fault;
            }

            injected += inj_here;
            detected += det_here;
            std::printf("%-10s %-10s %8llu %10llu\n", isa.c_str(),
                        interp ? "interp" : "generated",
                        static_cast<unsigned long long>(inj_here),
                        static_cast<unsigned long long>(det_here));
        }
    }

    double detection_rate =
        injected ? static_cast<double>(detected) /
                       static_cast<double>(injected)
                 : 0.0;
    std::printf("\ndetection: %llu/%llu = %.3f\n",
                static_cast<unsigned long long>(detected),
                static_cast<unsigned long long>(injected), detection_rate);

    stats::Json fc = stats::Json::object();
    fc.set("mips_off", stats::Json(mips_off));
    fc.set("mips_armed", stats::Json(mips_armed));
    fc.set("overhead_pct", stats::Json(overhead_pct));
    fc.set("injected", stats::Json(injected));
    fc.set("detected", stats::Json(detected));
    fc.set("state_faults", stats::Json(state_faults));
    fc.set("container_faults", stats::Json(container_faults));
    fc.set("detection_rate", stats::Json(detection_rate));
    report.addResult("fault_containment", std::move(fc));
    report.write(json_path);
    return detection_rate == 1.0 ? 0 : 1;
}
