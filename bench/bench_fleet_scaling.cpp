/**
 * @file
 * Fleet throughput scaling: aggregate MIPS of a fixed batch of kernel
 * jobs (all three ISAs x the kernel suite) as the SimFleet thread count
 * sweeps 1..hw_concurrency.  The jobs are embarrassingly parallel, so
 * aggregate throughput should rise close to linearly until the physical
 * cores run out; the JSON records the curve and check_bench_json.py
 * enforces its shape (thread counts present, MIPS monotone up to a
 * tolerance, top-thread-count speedup floor).
 *
 * The bench also cross-checks determinism on every sweep point: each
 * job's architectural state hash must equal the 1-thread run's.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "parallel/fleet.hpp"

using namespace onespec;
using namespace onespec::bench;
using onespec::parallel::FleetJob;
using onespec::parallel::FleetReport;
using onespec::parallel::SimFleet;

namespace {

/** The full cross-ISA batch: every kernel on every shipped ISA. */
std::vector<FleetJob>
makeJobs(const std::string &buildset, uint64_t max_instrs)
{
    std::vector<FleetJob> jobs;
    for (const auto &isa : shippedIsas()) {
        IsaWorkloads &w = workloadsFor(isa);
        for (const auto &[kname, prog] : w.programs) {
            FleetJob j;
            j.spec = w.spec.get();
            j.program = &prog;
            j.buildset = buildset;
            j.maxInstrs = max_instrs;
            j.name = isa + "/" + kname;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t max_instrs = 2'000'000;
    std::string buildset = "BlockMinNo";
    std::string json_path;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            max_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--buildset") == 0 && i + 1 < argc) {
            buildset = argv[++i];
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            // CI-sized: enough work per job that pool overhead is noise,
            // small enough that the whole sweep finishes in seconds.
            smoke = true;
            max_instrs = 250'000;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    unsigned hw = parallel::hardwareThreads();
    // Sweep at least to t=2 even on a single-core host: no speedup is
    // expected there, but the t>1 determinism cross-check must still
    // run.  check_bench_json.py only enforces the speedup floor when
    // hw_concurrency is wide enough for it to be physical.
    unsigned sweep_max = std::max(hw, 2u);
    std::vector<FleetJob> jobs = makeJobs(buildset, max_instrs);

    BenchReport report("fleet_scaling");
    report.setParam("buildset", stats::Json(buildset));
    report.setParam("max_instrs_per_job", stats::Json(max_instrs));
    report.setParam("jobs", stats::Json(static_cast<uint64_t>(jobs.size())));
    report.setParam("hw_concurrency", stats::Json(static_cast<uint64_t>(hw)));
    report.setParam("smoke", stats::Json(smoke));

    std::printf("FLEET SCALING: aggregate MIPS vs thread count\n");
    std::printf("(%zu jobs: %zu ISAs x %zu kernels, buildset %s, "
                "<=%llu instrs/job, host has %u hardware threads)\n\n",
                jobs.size(), shippedIsas().size(), kernelNames().size(),
                buildset.c_str(),
                static_cast<unsigned long long>(max_instrs), hw);
    std::printf("%8s %12s %12s %10s\n", "threads", "wall_ms",
                "agg_MIPS", "speedup");

    std::vector<uint64_t> baselineHashes;
    double mips1 = 0.0;
    stats::Json curve = stats::Json::array();
    for (unsigned t = 1; t <= sweep_max; ++t) {
        SimFleet fleet(t);
        FleetReport r = fleet.run(jobs);

        for (size_t j = 0; j < r.results.size(); ++j) {
            const auto &res = r.results[j];
            if (!res.error.empty() ||
                res.run.status == RunStatus::Fault) {
                std::fprintf(stderr, "job %s failed: %s\n",
                             jobs[j].name.c_str(), res.error.c_str());
                return 1;
            }
        }
        if (t == 1) {
            for (const auto &res : r.results)
                baselineHashes.push_back(res.stateHash);
            mips1 = r.aggregateMips();
        } else {
            for (size_t j = 0; j < r.results.size(); ++j) {
                if (r.results[j].stateHash != baselineHashes[j]) {
                    std::fprintf(stderr,
                                 "DETERMINISM VIOLATION: job %s hash "
                                 "differs at %u threads\n",
                                 jobs[j].name.c_str(), t);
                    return 1;
                }
            }
        }

        double mips = r.aggregateMips();
        std::printf("%8u %12.2f %12.2f %9.2fx\n", t,
                    static_cast<double>(r.wallNs) / 1e6, mips,
                    mips1 > 0 ? mips / mips1 : 0.0);
        std::fflush(stdout);

        stats::Json point = stats::Json::object();
        point.set("threads", stats::Json(static_cast<uint64_t>(t)));
        point.set("wall_ns", stats::Json(r.wallNs));
        point.set("instrs", stats::Json(r.totalInstrs()));
        point.set("mips", stats::Json(mips));
        point.set("speedup", stats::Json(mips1 > 0 ? mips / mips1 : 0.0));
        curve.push(std::move(point));
    }

    report.addResult("fleet_scaling", std::move(curve));
    report.addResult("determinism_checked", stats::Json(true));
    report.write(json_path);
    return 0;
}
