#include "benchcommon.hpp"

#include <cmath>

#include "support/logging.hpp"
#include "workload/builder.hpp"

namespace onespec::bench {

uint64_t
benchParam(const std::string &kernel)
{
    // Sized so each kernel runs for roughly 1.5-5M dynamic instructions.
    if (kernel == "fib")
        return 250'000;
    if (kernel == "sieve")
        return 120'000;
    if (kernel == "matmul")
        return 56;
    if (kernel == "shellsort")
        return 24'000;
    if (kernel == "strhash")
        return 36'000;
    if (kernel == "crc32")
        return 40'000;
    if (kernel == "listsum")
        return 48'000;
    return 1000;
}

IsaWorkloads &
workloadsFor(const std::string &isa)
{
    static std::map<std::string, std::unique_ptr<IsaWorkloads>> cache;
    auto &slot = cache[isa];
    if (!slot) {
        slot = std::make_unique<IsaWorkloads>();
        slot->spec = loadIsa(isa);
        for (const auto &k : kernelNames()) {
            auto b = makeBuilder(*slot->spec);
            slot->programs.emplace_back(
                k, buildKernel(*b, k, benchParam(k)));
        }
    }
    return *slot;
}

Measurement
runTimed(SimContext &ctx, FunctionalSimulator &sim, const Program &prog,
         uint64_t min_instrs, bool count_host)
{
    // Warm up: one full run primes decode/block caches and host caches.
    ctx.load(prog);
    RunResult warm = sim.run(min_instrs);
    ONESPEC_ASSERT(warm.status != RunStatus::Fault,
                   "kernel faulted during warm-up");

    Measurement m;
    HostInstrCounter counter;
    Stopwatch sw;
    if (count_host && counter.available())
        counter.start();
    sw.start();
    while (m.instrs < min_instrs) {
        ctx.load(prog);
        RunResult rr = sim.run(min_instrs - m.instrs);
        ONESPEC_ASSERT(rr.status != RunStatus::Fault, "kernel faulted");
        m.instrs += rr.instrs;
        if (rr.instrs == 0)
            break;
    }
    m.ns = sw.elapsedNs();
    if (count_host && counter.available())
        m.hostInstrs = counter.stop();
    return m;
}

double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    int n = 0;
    for (double x : xs) {
        if (x > 0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0.0;
}

double
measureCell(const std::string &isa, const std::string &buildset,
            uint64_t min_instrs, double *out_host_per_sim,
            double *out_ns_per_sim, int repeats)
{
    IsaWorkloads &w = workloadsFor(isa);
    std::vector<double> mips, host, nsps;
    for (const auto &[kname, prog] : w.programs) {
        SimContext ctx(w.spec.operator*());
        ctx.load(prog);
        auto sim = SimRegistry::instance().create(ctx, buildset);
        ONESPEC_ASSERT(sim, "no generated simulator for ", isa, "/",
                       buildset);
        // Best-of-N: wall-clock noise only ever slows a run down.
        Measurement best;
        for (int r = 0; r < repeats; ++r) {
            Measurement m = runTimed(ctx, *sim, prog, min_instrs,
                                     out_host_per_sim != nullptr);
            if (r == 0 || m.nsPerSim() < best.nsPerSim())
                best = m;
        }
        Measurement m = best;
        mips.push_back(m.mips());
        nsps.push_back(m.nsPerSim());
        if (m.hostInstrs)
            host.push_back(m.hostPerSim());
    }
    if (out_host_per_sim)
        *out_host_per_sim = geomean(host);
    if (out_ns_per_sim)
        *out_ns_per_sim = geomean(nsps);
    return geomean(mips);
}

bool
hostCounterAvailable()
{
    HostInstrCounter c;
    if (!c.available())
        return false;
    c.start();
    volatile uint64_t x = 0;
    for (int i = 0; i < 1000; ++i)
        x = x + 1;
    return c.stop() > 0;
}

} // namespace onespec::bench
