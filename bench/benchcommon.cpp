#include "benchcommon.hpp"

#include <cmath>

#include "support/logging.hpp"
#include "workload/builder.hpp"

namespace onespec::bench {

uint64_t
benchParam(const std::string &kernel)
{
    // Sized so each kernel runs for roughly 1.5-5M dynamic instructions.
    if (kernel == "fib")
        return 250'000;
    if (kernel == "sieve")
        return 120'000;
    if (kernel == "matmul")
        return 56;
    if (kernel == "shellsort")
        return 24'000;
    if (kernel == "strhash")
        return 36'000;
    if (kernel == "crc32")
        return 40'000;
    if (kernel == "listsum")
        return 48'000;
    return 1000;
}

IsaWorkloads &
workloadsFor(const std::string &isa)
{
    static std::map<std::string, std::unique_ptr<IsaWorkloads>> cache;
    auto &slot = cache[isa];
    if (!slot) {
        slot = std::make_unique<IsaWorkloads>();
        slot->spec = loadIsa(isa);
        for (const auto &k : kernelNames()) {
            auto b = makeBuilder(*slot->spec);
            slot->programs.emplace_back(
                k, buildKernel(*b, k, benchParam(k)));
        }
    }
    return *slot;
}

Measurement
runTimed(SimContext &ctx, FunctionalSimulator &sim, const Program &prog,
         uint64_t min_instrs, bool count_host)
{
    // Warm up: one full run primes decode/block caches and host caches.
    ctx.load(prog);
    RunResult warm = sim.run(min_instrs);
    ONESPEC_ASSERT(warm.status != RunStatus::Fault,
                   "kernel faulted during warm-up");

    Measurement m;
    HostInstrCounter counter;
    Stopwatch sw;
    if (count_host && counter.available())
        counter.start();
    sw.start();
    while (m.instrs < min_instrs) {
        ctx.load(prog);
        RunResult rr = sim.run(min_instrs - m.instrs);
        ONESPEC_ASSERT(rr.status != RunStatus::Fault, "kernel faulted");
        m.instrs += rr.instrs;
        if (rr.instrs == 0)
            break;
    }
    m.ns = sw.elapsedNs();
    if (count_host && counter.available())
        m.hostInstrs = counter.stop();
    return m;
}

double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    int n = 0;
    for (double x : xs) {
        if (x > 0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0.0;
}

std::string
cellGroupPath(const std::string &isa, const std::string &buildset)
{
    return "iface." + isa + "." + buildset;
}

CellResult
measureCellFull(const std::string &isa, const std::string &buildset,
                uint64_t min_instrs, int repeats, bool count_host)
{
    IsaWorkloads &w = workloadsFor(isa);
    CellResult res;
    res.isa = isa;
    res.buildset = buildset;
    stats::StatGroup &cell =
        stats::StatsRegistry::global().group(cellGroupPath(isa, buildset));
    std::vector<double> mips, host, nsps;
    uint64_t host_total = 0;
    for (const auto &[kname, prog] : w.programs) {
        (void)kname;
        SimContext ctx(w.spec.operator*());
        ctx.load(prog);
        auto sim = SimRegistry::instance().create(ctx, buildset);
        ONESPEC_ASSERT(sim, "no generated simulator for ", isa, "/",
                       buildset);
        // Best-of-N: wall-clock noise only ever slows a run down.
        Measurement best;
        for (int r = 0; r < repeats; ++r) {
            Measurement m =
                runTimed(ctx, *sim, prog, min_instrs, count_host);
            if (r == 0 || m.nsPerSim() < best.nsPerSim())
                best = m;
        }
        Measurement m = best;
        mips.push_back(m.mips());
        nsps.push_back(m.nsPerSim());
        if (m.hostInstrs) {
            host.push_back(m.hostPerSim());
            host_total += m.hostInstrs;
        }
        // Counters cover warm-up plus every repeat; the crossing *ratios*
        // (instrs per crossing, step calls per instr) are what the report
        // cares about and those are repeat-invariant.
        res.counters += sim->ifaceCounters();
        res.instrs += sim->ifaceCounters().instrs;
        sim->publishStats(cell);
    }
    res.mips = geomean(mips);
    res.nsPerSim = geomean(nsps);
    res.hostPerSim = geomean(host);
    res.hostCounted = !host.empty();
    if (host_total)
        publishHostCost(cell.group("host"), host_total, res.instrs);
    return res;
}

double
measureCell(const std::string &isa, const std::string &buildset,
            uint64_t min_instrs, double *out_host_per_sim,
            double *out_ns_per_sim, int repeats)
{
    CellResult r = measureCellFull(isa, buildset, min_instrs, repeats,
                                   out_host_per_sim != nullptr);
    if (out_host_per_sim)
        *out_host_per_sim = r.hostPerSim;
    if (out_ns_per_sim)
        *out_ns_per_sim = r.nsPerSim;
    return r.mips;
}

bool
hostCounterAvailable()
{
    HostInstrCounter c;
    if (!c.available())
        return false;
    c.start();
    volatile uint64_t x = 0;
    for (int i = 0; i < 1000; ++i)
        x = x + 1;
    return c.stop() > 0;
}

} // namespace onespec::bench
