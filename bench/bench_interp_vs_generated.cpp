/**
 * @file
 * Footnote-5 reproduction: the paper measures the base cost of an
 * *interpreted* style of execution at 205.5 host instructions per
 * simulated instruction for Alpha vs 103.98 for the translated style
 * (about 2x).  Here: the tree-walking interpreter back end vs the
 * synthesized One/Min/No simulator for each ISA.
 */

#include <cstdio>
#include <cstring>

#include "benchcommon.hpp"
#include "benchreport.hpp"

using namespace onespec;
using namespace onespec::bench;

int
main(int argc, char **argv)
{
    uint64_t min_instrs = 1'000'000;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            min_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            min_instrs = 80'000;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    BenchReport report("interp_vs_generated");
    report.setParam("min_instrs", stats::Json(min_instrs));

    std::printf("INTERPRETED vs SYNTHESIZED EXECUTION (One/Min/No)\n");
    std::printf("(paper footnote 5: interpreted 205.5 vs translated "
                "103.98 host instrs/sim instr on Alpha, ~2.0x)\n\n");
    std::printf("%-10s %14s %14s %8s\n", "ISA", "interp MIPS",
                "synth MIPS", "ratio");

    for (const auto &isa : shippedIsas()) {
        IsaWorkloads &w = workloadsFor(isa);
        std::vector<double> im, gm;
        for (const auto &[kname, prog] : w.programs) {
            {
                SimContext ctx(*w.spec);
                ctx.load(prog);
                auto sim = makeInterpSimulator(ctx, "OneMinNo");
                Measurement m =
                    runTimed(ctx, *sim, prog, min_instrs / 4);
                im.push_back(m.mips());
            }
            {
                SimContext ctx(*w.spec);
                ctx.load(prog);
                auto sim = SimRegistry::instance().create(ctx, "OneMinNo");
                Measurement m = runTimed(ctx, *sim, prog, min_instrs);
                gm.push_back(m.mips());
            }
        }
        double gi = geomean(im), gg = geomean(gm);
        stats::Json row = stats::Json::object();
        row.set("interp_mips", stats::Json(gi));
        row.set("generated_mips", stats::Json(gg));
        row.set("ratio", stats::Json(gi > 0 ? gg / gi : 0.0));
        report.addResult(isa, std::move(row));
        std::printf("%-10s %14.2f %14.2f %7.1fx\n", isa.c_str(), gi, gg,
                    gi > 0 ? gg / gi : 0.0);
    }
    report.write(json_path);
    return 0;
}
