/**
 * @file
 * Record/replay must be free when off and honest when on.  This bench
 * measures the cost of the tape recorder (src/replay/) around a fleet
 * batch and closes the loop by replaying what it recorded:
 *
 *  1. Baseline.  The kernel suite through SimFleet with no policy --
 *     no record-mode branch anywhere near the hot path.
 *
 *  2. Disarmed.  The same batch under a FleetPolicy with record mode
 *     off (empty bundleDir): the production path when replay support is
 *     compiled in but unused.  The checker gates this delta at 5%.
 *
 *  3. Record.  The same batch with bundleDir set and bundleAll on:
 *     every job records a full tape (program image, OS-call stream,
 *     expected outcome) and writes a repro bundle.  Reported, not
 *     gated: record mode is a triage posture, and its cost -- mostly
 *     the per-job bundle write -- is an honest disclosure.
 *
 *  4. Replay identity.  Every bundle from phase 3, plus a small repro
 *     batch containing a fault-injected job and a quarantined
 *     (poisoned-buildset) job, is re-executed with replayTape() on the
 *     interpreter AND the generated back end.  Every replay must be
 *     bit-identical to its recording -- the single-specification
 *     principle checked through the record/replay lens.  Bundle size
 *     per recorded instruction is reported alongside.
 *
 * Emits BENCH_replay.json; tools/check_bench_json.py enforces the
 * disarmed ceiling and the replay-identity flag.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "fault/fault.hpp"
#include "parallel/fleet.hpp"
#include "replay/bundle.hpp"
#include "replay/replayer.hpp"
#include "workload/builder.hpp"

using namespace onespec;
using namespace onespec::bench;
using onespec::parallel::FleetJob;
using onespec::parallel::FleetPolicy;
using onespec::parallel::FleetReport;
using onespec::parallel::SimFleet;

namespace {

std::vector<FleetJob>
makeJobs(const std::string &buildset, uint64_t max_instrs)
{
    std::vector<FleetJob> jobs;
    for (const auto &isa : shippedIsas()) {
        IsaWorkloads &w = workloadsFor(isa);
        for (const auto &[kname, prog] : w.programs) {
            FleetJob j;
            j.spec = w.spec.get();
            j.program = &prog;
            j.buildset = buildset;
            j.maxInstrs = max_instrs;
            j.name = isa + "/" + kname;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

/** Best aggregate MIPS over @p repeats runs; @p pol may be null for the
 *  no-policy baseline.  @p last receives the final run's report. */
double
bestMips(SimFleet &fleet, const std::vector<FleetJob> &jobs,
         const FleetPolicy *pol, int repeats, FleetReport *last = nullptr)
{
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
        FleetReport rep = pol ? fleet.run(jobs, *pol) : fleet.run(jobs);
        for (const auto &res : rep.results) {
            if (res.quarantined) {
                std::fprintf(stderr, "replay bench job failed: %s\n",
                             res.error.c_str());
                std::exit(1);
            }
        }
        best = std::max(best, rep.aggregateMips());
        if (last && r == repeats - 1)
            *last = std::move(rep);
    }
    return best;
}

double
overheadPct(double base, double other)
{
    return other > 0 ? (base / other - 1.0) * 100.0 : 0.0;
}

/** Replay one bundle on both back ends; returns the number of
 *  non-identical replays (0 or up to 2) and counts them in @p total. */
unsigned
replayBothBackEnds(const std::string &path, unsigned *total)
{
    replay::Bundle b = replay::loadBundleFile(path);
    unsigned diverged = 0;
    for (auto be :
         {replay::ReplayBackend::Interp, replay::ReplayBackend::Generated}) {
        replay::ReplayOptions opt;
        opt.backend = be;
        replay::ReplayReport rep = replay::replayTape(b.tape, opt);
        ++*total;
        if (!rep.identical) {
            ++diverged;
            std::fprintf(stderr, "DIVERGED: %s on %s\n", path.c_str(),
                         be == replay::ReplayBackend::Interp ? "interp"
                                                             : "generated");
            for (const auto &m : rep.mismatches)
                std::fprintf(stderr, "  mismatch: %s\n", m.c_str());
        }
    }
    return diverged;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t max_instrs = 2'000'000;
    int repeats = 3;
    std::string buildset = "BlockMinNo";
    std::string json_path;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            max_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--buildset") == 0 && i + 1 < argc) {
            buildset = argv[++i];
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            max_instrs = 250'000;
            repeats = 2;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    BenchReport report("replay");
    report.setParam("buildset", stats::Json(buildset));
    report.setParam("max_instrs_per_job", stats::Json(max_instrs));
    report.setParam("smoke", stats::Json(smoke));

    std::printf("RECORD/REPLAY: tape overhead + strict-replay identity\n\n");

    const std::string bundle_dir = "bench_replay_bundles";
    std::vector<FleetJob> jobs = makeJobs(buildset, max_instrs);
    SimFleet fleet(0);

    // ---- Phases 1-3: no policy / record off / record on ----------------
    double mips_baseline = bestMips(fleet, jobs, nullptr, repeats);

    FleetPolicy off;
    double mips_disarmed = bestMips(fleet, jobs, &off, repeats);

    FleetPolicy rec;
    rec.bundleDir = bundle_dir;
    rec.bundleAll = true;
    FleetReport recorded;
    double mips_record = bestMips(fleet, jobs, &rec, repeats, &recorded);

    double disarmed_pct = overheadPct(mips_baseline, mips_disarmed);
    double record_pct = overheadPct(mips_baseline, mips_record);
    std::printf("record mode absent:   %10.2f MIPS\n", mips_baseline);
    std::printf("record mode off:      %10.2f MIPS  (overhead %.2f%%)\n",
                mips_disarmed, disarmed_pct);
    std::printf("record mode on:       %10.2f MIPS  (overhead %.2f%%)\n\n",
                mips_record, record_pct);

    // ---- Phase 4: replay identity over everything recorded -------------
    // A small repro batch adds the harder cases: a fault-injected run
    // (the forced syscall failure must be recorded as observed) and a
    // poisoned-buildset quarantine (the bundle must reproduce the
    // SimError kind, not a finished state).
    auto spec = loadIsa(shippedIsas().front());
    auto kb = makeBuilder(*spec);
    Program small = buildKernel(*kb, "fib", 64);
    fault::FaultPlan plan;
    plan.seed = 1;
    plan.events.push_back({fault::FaultOp::SyscallFail, 1, 0, 0, false});

    std::vector<FleetJob> repro(2);
    repro[0].spec = spec.get();
    repro[0].program = &small;
    repro[0].buildset = buildset;
    repro[0].name = "repro/faulted";
    repro[0].faultPlan = &plan;
    repro[1].spec = spec.get();
    repro[1].program = &small;
    repro[1].buildset = "PoisonedBuildset";
    repro[1].name = "repro/poisoned";
    FleetReport rrep = fleet.run(repro, rec);

    std::vector<std::string> bundles;
    uint64_t recorded_instrs = 0, bundle_bytes = 0;
    unsigned quarantine_bundles = 0;
    for (const auto &res : recorded.results) {
        bundles.push_back(res.bundlePath);
        recorded_instrs += res.run.instrs;
    }
    for (const auto &res : rrep.results) {
        if (res.bundlePath.empty()) {
            std::fprintf(stderr, "repro job emitted no bundle\n");
            return 1;
        }
        bundles.push_back(res.bundlePath);
        recorded_instrs += res.run.instrs;
        if (res.quarantined)
            ++quarantine_bundles;
    }
    for (const auto &p : bundles)
        bundle_bytes += std::filesystem::file_size(p);

    unsigned replays = 0, diverged = 0;
    for (const auto &p : bundles)
        diverged += replayBothBackEnds(p, &replays);
    bool identical = diverged == 0;
    double bytes_per_instr =
        recorded_instrs
            ? static_cast<double>(bundle_bytes) /
                  static_cast<double>(recorded_instrs)
            : 0.0;

    std::printf("replayed %u bundles x 2 back ends: %u replays, "
                "%u diverged -- %s\n",
                static_cast<unsigned>(bundles.size()), replays, diverged,
                identical ? "IDENTICAL" : "DIVERGED");
    std::printf("bundle cost: %llu bytes over %llu recorded instrs "
                "(%.4f bytes/instr)\n",
                static_cast<unsigned long long>(bundle_bytes),
                static_cast<unsigned long long>(recorded_instrs),
                bytes_per_instr);

    stats::Json rj = stats::Json::object();
    rj.set("mips_baseline", stats::Json(mips_baseline));
    rj.set("mips_disarmed", stats::Json(mips_disarmed));
    rj.set("mips_record", stats::Json(mips_record));
    rj.set("record_overhead_pct", stats::Json(disarmed_pct));
    rj.set("record_mode_overhead_pct", stats::Json(record_pct));
    rj.set("bundles", stats::Json(static_cast<uint64_t>(bundles.size())));
    rj.set("quarantine_bundles",
           stats::Json(static_cast<uint64_t>(quarantine_bundles)));
    rj.set("bundle_bytes", stats::Json(bundle_bytes));
    rj.set("recorded_instrs", stats::Json(recorded_instrs));
    rj.set("bundle_bytes_per_instr", stats::Json(bytes_per_instr));
    rj.set("replays", stats::Json(static_cast<uint64_t>(replays)));
    rj.set("replay_identical", stats::Json(identical));
    report.addResult("replay", std::move(rj));
    report.write(json_path);

    std::error_code ec;
    std::filesystem::remove_all(bundle_dir, ec);

    // The bench gates only correctness (every replay identical, both
    // repro shapes recorded); the disarmed ceiling lives in the checker.
    bool ok = identical && replays == 2 * bundles.size() &&
              quarantine_bundles > 0 && !bundles.empty();
    return ok ? 0 : 1;
}
