/**
 * @file
 * Machine-readable benchmark reports.  Each bench binary builds a
 * BenchReport and writes `BENCH_<name>.json` next to its text table, so
 * Tables I-III and the ablations become diffable artifacts across PRs.
 * The schema is documented in docs/OBSERVABILITY.md and enforced by
 * tools/check_bench_json.py (wired into ctest as a smoke run).
 *
 * Cell counters are *sourced from the stats registry*: measureCellFull()
 * publishes every simulator's interface-crossing and cache counters into
 * StatsRegistry::global() under "iface.<isa>.<buildset>", and addCell()
 * reads them back from there, so the JSON is a view of the same tree
 * `dumpStats()` prints.
 */

#ifndef ONESPEC_BENCH_BENCHREPORT_HPP
#define ONESPEC_BENCH_BENCHREPORT_HPP

#include <string>
#include <vector>

#include "stats/json.hpp"

namespace onespec::bench {

struct CellResult;

/** Accumulates one bench run's results and writes BENCH_<name>.json. */
class BenchReport
{
  public:
    /** @p name is the table key: "table2" -> BENCH_table2.json. */
    explicit BenchReport(std::string name);

    /** Record a bench parameter under "meta" (instrs, repeats, ...). */
    void setParam(const std::string &key, stats::Json value);

    /** Record one (isa, buildset) measurement; pulls that cell's
     *  interface counters out of the global stats registry. */
    void addCell(const std::string &isa, const std::string &buildset,
                 const CellResult &r);

    /** Add a free-form named value (ratios, ablation results, ...). */
    void addResult(const std::string &key, stats::Json value);

    /** Full report as JSON (cells, geomeans, registry dump, metadata). */
    stats::Json toJson() const;

    /**
     * Write to @p path, or to the default location when empty:
     * $ONESPEC_BENCH_JSON_DIR/BENCH_<name>.json if the env var is set,
     * else ./BENCH_<name>.json.  Returns the path written, or empty on
     * I/O failure (reported to stderr, never fatal -- a bench's text
     * output must survive an unwritable directory).
     */
    std::string write(const std::string &path = "") const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    stats::Json meta_ = stats::Json::object();
    stats::Json results_ = stats::Json::object();
    std::vector<stats::Json> cells_;
};

} // namespace onespec::bench

#endif // ONESPEC_BENCH_BENCHREPORT_HPP
