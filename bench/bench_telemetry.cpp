/**
 * @file
 * Telemetry benchmark: does observing the service change the service?
 *
 *  1. Overhead.  The same closed-loop batch runs twice against fresh
 *     daemons -- once with the client's trace context disabled (the v1
 *     wire bytes) and once with every submit minting a 64-bit trace id
 *     that the daemon threads through admission, queueing, and every
 *     slice span.  The flight recorder stays *disarmed* on both sides,
 *     so the comparison isolates the wire-propagated context itself:
 *     trace ids are metadata, and the jobs/sec gap must stay inside
 *     tools/check_bench_json.py's ceiling (2% full, slack under
 *     --smoke where second-long runs jitter far beyond that).
 *
 *  2. Read-only scrapes.  A deterministic single-worker job mix (some
 *     jobs sliced hard enough to preempt through the checkpoint store,
 *     one poisoned job for the quarantine path) runs twice: once
 *     undisturbed, once with a second connection scraping OpenMetrics
 *     (MetricszReq/Metricsz) while every job is in flight.  Every
 *     per-job result -- status, instruction count, state hash, guest
 *     output, and the full merged stats dump -- plus the daemon's final
 *     /statsz snapshot must be bit-identical across the two runs, and
 *     successive scrapes must be monotone per counter family.  The
 *     scrape texts are also written out (--scrape-out) so ctest can run
 *     tools/check_metrics_text.py over real daemon expositions.
 *
 * Emits BENCH_telemetry.json (results.telemetry); the checker enforces
 * the overhead ceiling, scrape_identity, and scrapes_monotone.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "parallel/threadpool.hpp"
#include "perf/hostcount.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"

using namespace onespec;
using namespace onespec::bench;
using onespec::service::ClientEvent;
using onespec::service::JobSpec;
using onespec::service::ServiceClient;
using onespec::service::ServiceConfig;
using onespec::service::ServiceDaemon;
using onespec::service::SubmitOutcome;

namespace {

/** Uniform small job for the overhead phase: one ISA, one kernel, so
 *  the two timed runs differ in nothing but the trace context. */
JobSpec
overheadSpec(uint64_t max_instrs)
{
    JobSpec s;
    s.isa = shippedIsas().front();
    s.kernel = "fib";
    s.name = s.isa + "/fib";
    s.param = benchParam("fib");
    s.maxInstrs = max_instrs;
    return s;
}

/** One timed closed-loop batch: submit everything, drain every Result.
 *  Returns jobs/sec over the drain window. */
double
runRate(const std::string &base, unsigned workers, bool traced,
        size_t jobs, uint64_t max_instrs, uint64_t &completed)
{
    ServiceConfig cfg;
    cfg.socketPath = base + (traced ? "/ovh_t.sock" : "/ovh_b.sock");
    cfg.storeDir = base + (traced ? "/ovh_t_store" : "/ovh_b_store");
    cfg.workers = workers;
    cfg.queueDepth = uint32_t(jobs) + 8; // closed loop: nothing rejects
    cfg.tenantQuota = uint32_t(jobs) + 8;
    ServiceDaemon daemon(cfg);
    daemon.start();

    ServiceClient client;
    client.setTraceContext(traced);
    client.connect(cfg.socketPath, "bench");

    auto runBatch = [&](size_t n) {
        size_t have = 0;
        for (size_t i = 0; i < n; ++i) {
            SubmitOutcome o = client.submit(overheadSpec(max_instrs));
            if (!o.accepted) {
                std::fprintf(stderr, "overhead submit rejected: %s\n",
                             o.reject.reason.c_str());
                std::exit(1);
            }
        }
        ClientEvent ev;
        while (have < n && client.next(ev))
            if (ev.kind == ClientEvent::Kind::Result)
                ++have;
        return have;
    };

    runBatch(std::max<size_t>(2, jobs / 8)); // warm the pool first
    Stopwatch sw;
    sw.start();
    completed += runBatch(jobs);
    const uint64_t ns = sw.elapsedNs();
    daemon.stop();
    return ns ? double(jobs) * 1e9 / double(ns) : 0.0;
}

/** The scrape phase's deterministic job mix: rotating kernels, every
 *  third job sliced (preempts through the store), one poisoned job. */
JobSpec
mixSpec(size_t i, uint64_t max_instrs)
{
    const char *kernels[] = {"fib", "crc32", "listsum"};
    const auto &isas = shippedIsas();
    JobSpec s;
    s.isa = isas[i % isas.size()];
    s.kernel = kernels[i % 3];
    s.name = s.isa + "/" + s.kernel;
    s.param = benchParam(s.kernel);
    s.maxInstrs = max_instrs;
    if (i % 3 == 0)
        s.sliceInstrs = max_instrs / 3 + 1;
    if (i == 4) // quarantine path under observation
        s.buildset = "__poisoned__";
    return s;
}

/** Everything about one run that scraping must not change. */
struct MergedOutcome
{
    std::string fingerprint; ///< concatenated per-job results
    std::string finalStatsz; ///< daemon /statsz after the last Result
};

/**
 * Run the mix sequentially (one worker, closed loop) so the outcome is
 * a pure function of the job list.  When @p scrapes is non-null, a
 * second connection pulls an OpenMetrics exposition while each job is
 * in flight and the texts are appended there.
 */
MergedOutcome
runMerged(const std::string &base, bool scraped, size_t jobs,
          uint64_t max_instrs, uint64_t &completed,
          std::vector<std::string> *scrapes)
{
    ServiceConfig cfg;
    cfg.socketPath = base + (scraped ? "/mrg_s.sock" : "/mrg_p.sock");
    cfg.storeDir = base + (scraped ? "/mrg_s_store" : "/mrg_p_store");
    cfg.workers = 1;
    cfg.queueDepth = 8;
    cfg.metricsSampleEvery = 1;
    ServiceDaemon daemon(cfg);
    daemon.start();

    ServiceClient client;
    client.connect(cfg.socketPath, "bench");
    ServiceClient scraper;
    if (scraped)
        scraper.connect(cfg.socketPath, "scraper");

    MergedOutcome out;
    std::ostringstream fp;
    for (size_t i = 0; i < jobs; ++i) {
        JobSpec spec = mixSpec(i, max_instrs);
        SubmitOutcome o = client.submit(spec);
        if (!o.accepted) {
            std::fprintf(stderr, "merged submit rejected: %s\n",
                         o.reject.reason.c_str());
            std::exit(1);
        }
        if (scraped) // scrape with the job genuinely in flight
            scrapes->push_back(scraper.metricsz());
        ClientEvent ev;
        while (client.next(ev)) {
            if (ev.kind != ClientEvent::Kind::Result)
                continue;
            if (!ev.result.quarantined)
                ++completed;
            fp << spec.name << '|' << int(ev.result.quarantined) << '|'
               << int(ev.result.runStatus) << '|' << ev.result.instrs
               << '|' << ev.result.stateHash << '|' << ev.result.output
               << '|' << ev.result.statsDump << '\n';
            break;
        }
    }
    // The last Result is sent before the worker finishes retiring the
    // job (scheduler gauges, warm-pool release), so settle to a
    // quiescent dump: nothing running and identical twice in a row.
    std::string dump = client.statsz();
    for (int spin = 0; spin < 400; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        std::string cur = client.statsz();
        const bool idle =
            cur.find("\"running\": 0") != std::string::npos &&
            cur.find("\"in_flight_jobs\": 0") != std::string::npos;
        const bool stable = idle && cur == dump;
        dump = std::move(cur);
        if (stable)
            break;
    }
    out.finalStatsz = std::move(dump);
    out.fingerprint = fp.str();
    daemon.stop();
    return out;
}

/** Counter samples of one exposition: "name{labels}" -> value. */
std::map<std::string, double>
counterSamples(const std::string &text)
{
    std::map<std::string, double> out;
    std::map<std::string, bool> isCounter;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream meta(line.substr(7));
            std::string fam, kind;
            meta >> fam >> kind;
            isCounter[fam] = kind == "counter";
            continue;
        }
        if (line.empty() || line[0] == '#')
            continue;
        const size_t sp = line.rfind(' ');
        if (sp == std::string::npos)
            continue;
        const std::string key = line.substr(0, sp);
        const std::string fam = key.substr(0, key.find('{'));
        if (isCounter[fam])
            out[key] = std::strtod(line.c_str() + sp + 1, nullptr);
    }
    return out;
}

/** Every counter monotone non-decreasing across successive scrapes? */
bool
scrapesMonotone(const std::vector<std::string> &scrapes)
{
    std::map<std::string, double> prev;
    for (const std::string &text : scrapes) {
        std::map<std::string, double> cur = counterSamples(text);
        for (const auto &[key, value] : cur) {
            auto it = prev.find(key);
            if (it != prev.end() && value < it->second) {
                std::fprintf(stderr,
                             "scrape NOT monotone: %s %g -> %g\n",
                             key.c_str(), it->second, value);
                return false;
            }
        }
        prev = std::move(cur);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path, scrape_out;
    unsigned workers = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--scrape-out") == 0 &&
                   i + 1 < argc) {
            scrape_out = argv[++i];
        } else if (std::strcmp(argv[i], "--workers") == 0 &&
                   i + 1 < argc) {
            workers = unsigned(std::strtoul(argv[++i], nullptr, 0));
        } else {
            std::fprintf(stderr,
                         "usage: bench_telemetry [--smoke] [--workers N] "
                         "[--json FILE] [--scrape-out PREFIX]\n");
            return 2;
        }
    }
    if (workers == 0)
        workers = parallel::hardwareThreads();

    auto base = std::filesystem::temp_directory_path() /
                ("onespec_bench_tel_" +
                 std::to_string(static_cast<unsigned long>(::getpid())));
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base);

    BenchReport report("telemetry");
    report.setParam("smoke", stats::Json(smoke));
    report.setParam("workers", stats::Json(uint64_t{workers}));

    // Phase 1: disarmed trace-context overhead.  Best-of-N rates on
    // alternating runs, the standard defense against scheduler noise.
    const uint64_t ovhInstrs = smoke ? 40'000 : 400'000;
    const size_t ovhJobs = smoke ? 24 : 120;
    const int repeats = smoke ? 2 : 3;
    uint64_t completed = 0;
    std::printf("overhead: %zu-job closed loop x%d, trace context "
                "off/on (%u workers, recorder disarmed)...\n",
                ovhJobs, repeats, workers);
    double bestBase = 0.0, bestTraced = 0.0;
    for (int r = 0; r < repeats; ++r) {
        bestBase = std::max(bestBase,
                            runRate(base.string(), workers, false,
                                    ovhJobs, ovhInstrs, completed));
        bestTraced = std::max(bestTraced,
                              runRate(base.string(), workers, true,
                                      ovhJobs, ovhInstrs, completed));
    }
    const double overheadPct =
        bestTraced > 0 ? (bestBase / bestTraced - 1.0) * 100.0 : 1e9;
    std::printf("overhead: base %.1f jobs/s, traced %.1f jobs/s "
                "(%+.2f%%)\n", bestBase, bestTraced, overheadPct);

    // Phase 2: scrapes must be read-only and monotone.
    const uint64_t mixInstrs = smoke ? 30'000 : 200'000;
    const size_t mixJobs = smoke ? 9 : 24;
    std::printf("scrapes: %zu-job deterministic mix, plain vs scraped "
                "every job...\n", mixJobs);
    std::vector<std::string> scrapes;
    MergedOutcome plain = runMerged(base.string(), false, mixJobs,
                                    mixInstrs, completed, nullptr);
    MergedOutcome scraped = runMerged(base.string(), true, mixJobs,
                                      mixInstrs, completed, &scrapes);
    const bool identity = plain.fingerprint == scraped.fingerprint &&
                          plain.finalStatsz == scraped.finalStatsz;
    const bool monotone = scrapesMonotone(scrapes);
    std::printf("scrapes: %zu taken, identity %s, monotone %s\n",
                scrapes.size(), identity ? "bit-identical" : "MISMATCH",
                monotone ? "yes" : "NO");
    if (!identity) {
        if (plain.fingerprint != scraped.fingerprint)
            std::fprintf(stderr, "per-job results diverged:\n--- plain\n"
                         "%s--- scraped\n%s", plain.fingerprint.c_str(),
                         scraped.fingerprint.c_str());
        if (plain.finalStatsz != scraped.finalStatsz)
            std::fprintf(stderr, "final /statsz diverged:\n--- plain\n"
                         "%s\n--- scraped\n%s\n",
                         plain.finalStatsz.c_str(),
                         scraped.finalStatsz.c_str());
    }

    if (!scrape_out.empty()) {
        for (size_t i = 0; i < scrapes.size(); ++i) {
            const std::string path =
                scrape_out + std::to_string(i + 1) + ".txt";
            std::ofstream f(path, std::ios::binary);
            f << scrapes[i];
            if (!f)
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
        }
        std::printf("scrapes: wrote %zu exposition(s) to %s*.txt\n",
                    scrapes.size(), scrape_out.c_str());
    }

    stats::Json tel = stats::Json::object();
    tel.set("jobs_per_sec_base", stats::Json(bestBase));
    tel.set("jobs_per_sec_traced", stats::Json(bestTraced));
    tel.set("overhead_pct", stats::Json(overheadPct));
    tel.set("scrapes", stats::Json(uint64_t{scrapes.size()}));
    tel.set("completed", stats::Json(completed));
    tel.set("scrape_identity", stats::Json(identity));
    tel.set("scrapes_monotone", stats::Json(monotone));
    tel.set("workers", stats::Json(uint64_t{workers}));
    report.addResult("telemetry", std::move(tel));
    report.write(json_path);

    std::filesystem::remove_all(base);
    return identity && monotone ? 0 : 1;
}
