/**
 * @file
 * Checkpoint-parallel sampling vs serial sampling: the wall-clock payoff
 * of src/ckpt/ plus the determinism proof that makes it admissible.
 *
 * For each workload the bench runs (a) the serial sampling driver with
 * independent windows (the schedule the parallel driver reproduces) and
 * (b) checkpoint-parallel sampling on a SimFleet at full host width,
 * then asserts the merged stats registry dumps are byte-identical --
 * also re-checking identity at 1 and 2 threads.  The JSON records wall
 * clocks, window counts, and full-vs-delta checkpoint container sizes;
 * check_bench_json.py enforces delta <= full always and the
 * parallel-beats-serial floor on hosts with >= 4 hardware threads.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "parallel/ckpt_sampling.hpp"
#include "timing/sampling.hpp"

using namespace onespec;
using namespace onespec::bench;
using parallel::CkptSamplingConfig;
using parallel::CkptSamplingResult;
using parallel::SimFleet;

namespace {

constexpr const char *kDetailed = "StepAllNo";
constexpr const char *kFast = "BlockMinNo";

/** Registry dump of a SamplingStats under a fixed group: the
 *  byte-comparable witness both schedules must agree on. */
std::string
statsDump(const SamplingStats &s, const std::string &group)
{
    stats::StatsRegistry reg;
    s.publish(reg.group(group));
    std::ostringstream os;
    reg.dump(os);
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t max_instrs = 1'500'000;
    SamplingConfig scfg;
    scfg.windowInstrs = 1'000;
    scfg.periodInstrs = 10'000;
    scfg.independentWindows = true;
    std::string json_path;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            max_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
            scfg.windowInstrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--period") == 0 && i + 1 < argc) {
            scfg.periodInstrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            // CI-sized: ~20 windows per workload, seconds end to end.
            smoke = true;
            max_instrs = 200'000;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    unsigned hw = parallel::hardwareThreads();
    // One kernel per ISA keeps the bench minutes-not-hours while still
    // covering every ISA's state layout through the checkpoint path.
    const std::vector<std::pair<std::string, std::string>> picks = {
        {"alpha64", "fib"}, {"arm32", "crc32"}, {"ppc32", "sieve"}};

    BenchReport report("ckpt_sampling");
    report.setParam("max_instrs", stats::Json(max_instrs));
    report.setParam("window_instrs", stats::Json(scfg.windowInstrs));
    report.setParam("period_instrs", stats::Json(scfg.periodInstrs));
    report.setParam("hw_concurrency",
                    stats::Json(static_cast<uint64_t>(hw)));
    report.setParam("smoke", stats::Json(smoke));

    std::printf("CHECKPOINT-PARALLEL SAMPLING vs serial sampling\n");
    std::printf("(window %llu / period %llu, <=%llu instrs, detailed %s, "
                "fast %s, %u hardware threads)\n\n",
                static_cast<unsigned long long>(scfg.windowInstrs),
                static_cast<unsigned long long>(scfg.periodInstrs),
                static_cast<unsigned long long>(max_instrs), kDetailed,
                kFast, hw);
    std::printf("%-16s %8s %12s %12s %8s %12s %12s\n", "workload",
                "windows", "serial_ms", "parallel_ms", "speedup",
                "full_bytes", "delta_avg");

    uint64_t serialTotalNs = 0, parallelTotalNs = 0;
    uint64_t fullBytesTotal = 0, deltaBytesTotal = 0, deltaCount = 0;
    stats::Json rows = stats::Json::array();

    for (const auto &[isa, kernel] : picks) {
        IsaWorkloads &w = workloadsFor(isa);
        const Program *prog = nullptr;
        for (const auto &[kname, p] : w.programs)
            if (kname == kernel)
                prog = &p;
        if (!prog) {
            std::fprintf(stderr, "no kernel %s for %s\n", kernel.c_str(),
                         isa.c_str());
            return 1;
        }

        // Serial reference: one context, two interfaces, cold pipeline
        // per window (the schedule phase 2 is forced into).
        SimContext ctx(*w.spec);
        ctx.load(*prog);
        auto det = SimRegistry::instance().create(ctx, kDetailed);
        auto fast = SimRegistry::instance().create(ctx, kFast);
        if (!det || !fast) {
            std::fprintf(stderr, "missing buildsets for %s\n",
                         isa.c_str());
            return 1;
        }
        Stopwatch sw;
        sw.start();
        SamplingStats serial =
            runSampled(*w.spec, *det, *fast, scfg, max_instrs);
        uint64_t serialNs = sw.elapsedNs();

        CkptSamplingConfig ccfg;
        ccfg.sampling = scfg;
        ccfg.maxInstrs = max_instrs;
        ccfg.detailedBuildset = kDetailed;
        ccfg.fastBuildset = kFast;
        SimFleet fleet(hw);
        CkptSamplingResult par =
            parallel::runSampledCheckpointParallel(*w.spec, *prog, ccfg,
                                                   fleet);
        uint64_t parallelNs = par.ffNs + par.measureNs;
        for (size_t i = 0; i < par.jobErrors.size(); ++i) {
            if (!par.jobErrors[i].empty()) {
                std::fprintf(stderr, "%s window %zu failed: %s\n",
                             isa.c_str(), i, par.jobErrors[i].c_str());
                return 1;
            }
        }

        // Determinism: merged dump must be byte-identical to serial, at
        // every thread count we can exercise.
        const std::string group = "sampling." + isa + "." + kernel;
        std::string serialDump = statsDump(serial, group);
        std::vector<unsigned> widths = {1, 2};
        if (hw > 2)
            widths.push_back(hw);
        for (unsigned t : widths) {
            SimFleet f2(t);
            CkptSamplingResult p2 =
                parallel::runSampledCheckpointParallel(*w.spec, *prog,
                                                       ccfg, f2);
            if (statsDump(p2.stats, group) != serialDump) {
                std::fprintf(stderr,
                             "DETERMINISM VIOLATION: %s merged dump "
                             "differs from serial at %u threads\n",
                             isa.c_str(), t);
                return 1;
            }
        }

        // Container sizes: encode every checkpoint as it would hit disk.
        uint64_t fullBytes = 0, deltaBytes = 0, nDelta = 0;
        for (const auto &ck : par.checkpoints) {
            uint64_t sz = ckpt::encode(ck).size();
            if (ck.delta) {
                deltaBytes += sz;
                ++nDelta;
            } else {
                fullBytes += sz;
            }
        }
        double deltaAvg =
            nDelta ? static_cast<double>(deltaBytes) /
                         static_cast<double>(nDelta)
                   : 0.0;
        double speedup =
            parallelNs ? static_cast<double>(serialNs) /
                             static_cast<double>(parallelNs)
                       : 0.0;
        std::printf("%-16s %8llu %12.2f %12.2f %7.2fx %12llu %12.0f\n",
                    (isa + "/" + kernel).c_str(),
                    static_cast<unsigned long long>(serial.windows),
                    static_cast<double>(serialNs) / 1e6,
                    static_cast<double>(parallelNs) / 1e6, speedup,
                    static_cast<unsigned long long>(fullBytes), deltaAvg);
        std::fflush(stdout);

        serialTotalNs += serialNs;
        parallelTotalNs += parallelNs;
        fullBytesTotal += fullBytes;
        deltaBytesTotal += deltaBytes;
        deltaCount += nDelta;

        stats::Json row = stats::Json::object();
        row.set("workload", stats::Json(isa + "/" + kernel));
        row.set("windows", stats::Json(serial.windows));
        row.set("serial_wall_ns", stats::Json(serialNs));
        row.set("parallel_wall_ns", stats::Json(parallelNs));
        row.set("ff_ns", stats::Json(par.ffNs));
        row.set("measure_ns", stats::Json(par.measureNs));
        row.set("speedup", stats::Json(speedup));
        row.set("full_bytes", stats::Json(fullBytes));
        row.set("delta_bytes_avg", stats::Json(deltaAvg));
        row.set("delta_count", stats::Json(nDelta));
        row.set("identical_to_serial", stats::Json(true));
        rows.push(std::move(row));
    }

    double speedup =
        parallelTotalNs ? static_cast<double>(serialTotalNs) /
                              static_cast<double>(parallelTotalNs)
                        : 0.0;
    std::printf("\ntotal: serial %.2f ms, checkpoint-parallel %.2f ms "
                "(%.2fx) on %u threads\n",
                static_cast<double>(serialTotalNs) / 1e6,
                static_cast<double>(parallelTotalNs) / 1e6, speedup, hw);

    report.addResult("ckpt_sampling", std::move(rows));
    report.addResult("serial_total_ns", stats::Json(serialTotalNs));
    report.addResult("parallel_total_ns", stats::Json(parallelTotalNs));
    report.addResult("speedup", stats::Json(speedup));
    report.addResult("full_bytes_total", stats::Json(fullBytesTotal));
    report.addResult("delta_bytes_total", stats::Json(deltaBytesTotal));
    report.addResult("delta_checkpoints", stats::Json(deltaCount));
    report.addResult("determinism_checked", stats::Json(true));
    report.write(json_path);
    return 0;
}
