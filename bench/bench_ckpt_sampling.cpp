/**
 * @file
 * Checkpoint-parallel sampling vs serial sampling: the wall-clock payoff
 * of src/ckpt/ plus the determinism proof that makes it admissible.
 *
 * For each workload the bench runs (a) the serial sampling driver with
 * independent windows (the schedule the parallel driver reproduces) and
 * (b) checkpoint-parallel sampling on a SimFleet at full host width,
 * then asserts the merged stats registry dumps are byte-identical --
 * also re-checking identity at 1 and 2 threads.  The JSON records wall
 * clocks, window counts, and full-vs-delta checkpoint container sizes;
 * check_bench_json.py enforces delta <= full always and the
 * parallel-beats-serial floor on hosts with >= 4 hardware threads.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "ckpt/store.hpp"
#include "parallel/ckpt_sampling.hpp"
#include "timing/sampling.hpp"

using namespace onespec;
using namespace onespec::bench;
using parallel::CkptSamplingConfig;
using parallel::CkptSamplingResult;
using parallel::SimFleet;

namespace {

constexpr const char *kDetailed = "StepAllNo";
constexpr const char *kFast = "BlockMinNo";

/** Registry dump of a SamplingStats under a fixed group: the
 *  byte-comparable witness both schedules must agree on. */
std::string
statsDump(const SamplingStats &s, const std::string &group)
{
    stats::StatsRegistry reg;
    s.publish(reg.group(group));
    std::ostringstream os;
    reg.dump(os);
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t max_instrs = 1'500'000;
    SamplingConfig scfg;
    scfg.windowInstrs = 1'000;
    scfg.periodInstrs = 10'000;
    scfg.independentWindows = true;
    std::string json_path;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            max_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
            scfg.windowInstrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--period") == 0 && i + 1 < argc) {
            scfg.periodInstrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            // CI-sized: ~20 windows per workload, seconds end to end.
            smoke = true;
            max_instrs = 200'000;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    unsigned hw = parallel::hardwareThreads();
    // One kernel per ISA keeps the bench minutes-not-hours while still
    // covering every ISA's state layout through the checkpoint path.
    const std::vector<std::pair<std::string, std::string>> picks = {
        {"alpha64", "fib"}, {"arm32", "crc32"}, {"ppc32", "sieve"}};

    BenchReport report("ckpt_sampling");
    report.setParam("max_instrs", stats::Json(max_instrs));
    report.setParam("window_instrs", stats::Json(scfg.windowInstrs));
    report.setParam("period_instrs", stats::Json(scfg.periodInstrs));
    report.setParam("hw_concurrency",
                    stats::Json(static_cast<uint64_t>(hw)));
    report.setParam("smoke", stats::Json(smoke));

    std::printf("CHECKPOINT-PARALLEL SAMPLING vs serial sampling\n");
    std::printf("(window %llu / period %llu, <=%llu instrs, detailed %s, "
                "fast %s, %u hardware threads)\n\n",
                static_cast<unsigned long long>(scfg.windowInstrs),
                static_cast<unsigned long long>(scfg.periodInstrs),
                static_cast<unsigned long long>(max_instrs), kDetailed,
                kFast, hw);
    std::printf("%-16s %8s %12s %12s %8s %12s %12s\n", "workload",
                "windows", "serial_ms", "parallel_ms", "speedup",
                "full_bytes", "delta_avg");

    uint64_t serialTotalNs = 0, parallelTotalNs = 0;
    uint64_t fullBytesTotal = 0, deltaBytesTotal = 0, deltaCount = 0;
    uint64_t rawBytesTotal = 0, compressedBytesTotal = 0;
    uint64_t instrsTotal = 0, restoredInstrsTotal = 0, restoreNsTotal = 0;
    uint64_t storePutsTotal = 0, storeHitsTotal = 0;
    stats::Json rows = stats::Json::array();

    // One content-addressed store shared by the primary run and the
    // determinism re-runs of each workload: the re-runs recapture
    // byte-identical pages, so every one of their puts is a dedup hit --
    // the chained-delta dedup the JSON contract asserts on.
    const std::filesystem::path storeRoot =
        std::filesystem::temp_directory_path() / "onespec_bench_ckpt_store";

    for (const auto &[isa, kernel] : picks) {
        std::filesystem::remove_all(storeRoot);
        IsaWorkloads &w = workloadsFor(isa);
        const Program *prog = nullptr;
        for (const auto &[kname, p] : w.programs)
            if (kname == kernel)
                prog = &p;
        if (!prog) {
            std::fprintf(stderr, "no kernel %s for %s\n", kernel.c_str(),
                         isa.c_str());
            return 1;
        }

        // Serial reference: one context, two interfaces, cold pipeline
        // per window (the schedule phase 2 is forced into).
        SimContext ctx(*w.spec);
        ctx.load(*prog);
        auto det = SimRegistry::instance().create(ctx, kDetailed);
        auto fast = SimRegistry::instance().create(ctx, kFast);
        if (!det || !fast) {
            std::fprintf(stderr, "missing buildsets for %s\n",
                         isa.c_str());
            return 1;
        }
        Stopwatch sw;
        sw.start();
        SamplingStats serial =
            runSampled(*w.spec, *det, *fast, scfg, max_instrs);
        uint64_t serialNs = sw.elapsedNs();

        ckpt::CkptStore store(storeRoot.string());
        CkptSamplingConfig ccfg;
        ccfg.sampling = scfg;
        ccfg.maxInstrs = max_instrs;
        ccfg.detailedBuildset = kDetailed;
        ccfg.fastBuildset = kFast;
        ccfg.store = &store;
        ccfg.storePrefix = isa + "-" + kernel + "-w";
        SimFleet fleet(hw);
        CkptSamplingResult par =
            parallel::runSampledCheckpointParallel(*w.spec, *prog, ccfg,
                                                   fleet);
        uint64_t parallelNs = par.ffNs + par.measureNs;
        for (size_t i = 0; i < par.jobErrors.size(); ++i) {
            if (!par.jobErrors[i].empty()) {
                std::fprintf(stderr, "%s window %zu failed: %s\n",
                             isa.c_str(), i, par.jobErrors[i].c_str());
                return 1;
            }
        }

        // Determinism: merged dump must be byte-identical to serial, at
        // every thread count we can exercise.
        const std::string group = "sampling." + isa + "." + kernel;
        std::string serialDump = statsDump(serial, group);
        uint64_t storePuts = par.ckpt.storePagePuts;
        uint64_t storeHits = par.ckpt.storePageDedupHits;
        std::vector<unsigned> widths = {1, 2};
        if (hw > 2)
            widths.push_back(hw);
        for (unsigned t : widths) {
            SimFleet f2(t);
            CkptSamplingResult p2 =
                parallel::runSampledCheckpointParallel(*w.spec, *prog,
                                                       ccfg, f2);
            if (statsDump(p2.stats, group) != serialDump) {
                std::fprintf(stderr,
                             "DETERMINISM VIOLATION: %s merged dump "
                             "differs from serial at %u threads\n",
                             isa.c_str(), t);
                return 1;
            }
            storePuts += p2.ckpt.storePagePuts;
            storeHits += p2.ckpt.storePageDedupHits;
        }

        // Container sizes: encode every checkpoint both ways -- the v2
        // compressed container (how it hits disk) and the legacy raw v1
        // container (the baseline bytes_per_instr must beat).  The
        // full/delta split sticks to raw sizes: a delta's page set is a
        // subset of the full's, so delta <= full is an invariant of raw
        // bytes, not of compressed bytes (a dense dirty page can
        // out-size a whole well-compressing full image).
        uint64_t fullBytes = 0, deltaBytes = 0, nDelta = 0;
        uint64_t rawBytes = 0, compressedBytes = 0, restoredInstrs = 0;
        ckpt::EncodeOptions v1opt;
        v1opt.version = ckpt::kFormatVersionV1;
        for (const auto &ck : par.checkpoints) {
            uint64_t rawSz = ckpt::encode(ck, v1opt).size();
            compressedBytes += ckpt::encode(ck).size();
            rawBytes += rawSz;
            restoredInstrs += ck.instrsRetired;
            if (ck.delta) {
                deltaBytes += rawSz;
                ++nDelta;
            } else {
                fullBytes += rawSz;
            }
        }
        double deltaAvg =
            nDelta ? static_cast<double>(deltaBytes) /
                         static_cast<double>(nDelta)
                   : 0.0;
        double speedup =
            parallelNs ? static_cast<double>(serialNs) /
                             static_cast<double>(parallelNs)
                       : 0.0;
        double bytesPerInstr =
            par.totalInstrs ? static_cast<double>(compressedBytes) /
                                  static_cast<double>(par.totalInstrs)
                            : 0.0;
        double rawBytesPerInstr =
            par.totalInstrs ? static_cast<double>(rawBytes) /
                                  static_cast<double>(par.totalInstrs)
                            : 0.0;
        double dedupRatio =
            storePuts ? static_cast<double>(storeHits) /
                            static_cast<double>(storePuts)
                      : 0.0;
        // Restore bandwidth as "execution reached per wall second":
        // every window's chain lands at its checkpoint's instruction
        // count, so the restores stand in for that much execution.
        double restoreMips =
            par.ckpt.restoreNanos
                ? static_cast<double>(restoredInstrs) * 1000.0 /
                      static_cast<double>(par.ckpt.restoreNanos)
                : 0.0;
        std::printf("%-16s %8llu %12.2f %12.2f %7.2fx %12llu %12.0f\n",
                    (isa + "/" + kernel).c_str(),
                    static_cast<unsigned long long>(serial.windows),
                    static_cast<double>(serialNs) / 1e6,
                    static_cast<double>(parallelNs) / 1e6, speedup,
                    static_cast<unsigned long long>(fullBytes), deltaAvg);
        std::printf("%16s %8.3f B/instr vs %.3f raw, dedup %.2f, "
                    "restore %.1f MIPS\n", "",
                    bytesPerInstr, rawBytesPerInstr, dedupRatio,
                    restoreMips);
        std::fflush(stdout);

        serialTotalNs += serialNs;
        parallelTotalNs += parallelNs;
        fullBytesTotal += fullBytes;
        deltaBytesTotal += deltaBytes;
        deltaCount += nDelta;
        rawBytesTotal += rawBytes;
        compressedBytesTotal += compressedBytes;
        instrsTotal += par.totalInstrs;
        restoredInstrsTotal += restoredInstrs;
        restoreNsTotal += par.ckpt.restoreNanos;
        storePutsTotal += storePuts;
        storeHitsTotal += storeHits;

        stats::Json row = stats::Json::object();
        row.set("workload", stats::Json(isa + "/" + kernel));
        row.set("windows", stats::Json(serial.windows));
        row.set("serial_wall_ns", stats::Json(serialNs));
        row.set("parallel_wall_ns", stats::Json(parallelNs));
        row.set("ff_ns", stats::Json(par.ffNs));
        row.set("measure_ns", stats::Json(par.measureNs));
        row.set("speedup", stats::Json(speedup));
        row.set("full_bytes", stats::Json(fullBytes));
        row.set("delta_bytes_avg", stats::Json(deltaAvg));
        row.set("delta_count", stats::Json(nDelta));
        row.set("raw_bytes", stats::Json(rawBytes));
        row.set("compressed_bytes", stats::Json(compressedBytes));
        row.set("bytes_per_instr", stats::Json(bytesPerInstr));
        row.set("raw_bytes_per_instr", stats::Json(rawBytesPerInstr));
        row.set("dedup_ratio", stats::Json(dedupRatio));
        row.set("restore_mips", stats::Json(restoreMips));
        row.set("identical_to_serial", stats::Json(true));
        rows.push(std::move(row));
    }
    std::filesystem::remove_all(storeRoot);

    double speedup =
        parallelTotalNs ? static_cast<double>(serialTotalNs) /
                              static_cast<double>(parallelTotalNs)
                        : 0.0;
    std::printf("\ntotal: serial %.2f ms, checkpoint-parallel %.2f ms "
                "(%.2fx) on %u threads\n",
                static_cast<double>(serialTotalNs) / 1e6,
                static_cast<double>(parallelTotalNs) / 1e6, speedup, hw);

    report.addResult("ckpt_sampling", std::move(rows));
    report.addResult("serial_total_ns", stats::Json(serialTotalNs));
    report.addResult("parallel_total_ns", stats::Json(parallelTotalNs));
    report.addResult("speedup", stats::Json(speedup));
    report.addResult("full_bytes_total", stats::Json(fullBytesTotal));
    report.addResult("delta_bytes_total", stats::Json(deltaBytesTotal));
    report.addResult("delta_checkpoints", stats::Json(deltaCount));
    report.addResult("raw_bytes_total", stats::Json(rawBytesTotal));
    report.addResult("compressed_bytes_total",
                     stats::Json(compressedBytesTotal));
    report.addResult(
        "bytes_per_instr",
        stats::Json(instrsTotal
                        ? static_cast<double>(compressedBytesTotal) /
                              static_cast<double>(instrsTotal)
                        : 0.0));
    report.addResult(
        "raw_bytes_per_instr",
        stats::Json(instrsTotal
                        ? static_cast<double>(rawBytesTotal) /
                              static_cast<double>(instrsTotal)
                        : 0.0));
    report.addResult(
        "dedup_ratio",
        stats::Json(storePutsTotal
                        ? static_cast<double>(storeHitsTotal) /
                              static_cast<double>(storePutsTotal)
                        : 0.0));
    report.addResult(
        "restore_mips",
        stats::Json(restoreNsTotal
                        ? static_cast<double>(restoredInstrsTotal) *
                              1000.0 /
                              static_cast<double>(restoreNsTotal)
                        : 0.0));
    report.addResult("determinism_checked", stats::Json(true));
    report.write(json_path);
    return 0;
}
