/**
 * @file
 * Service-daemon benchmark: is fleet-as-a-service still the fleet?
 *
 *  1. Identity.  A mixed batch -- every shipped ISA, several kernels,
 *     some jobs sliced hard enough to be checkpoint-preempted and
 *     resumed several times -- is pushed through a live daemon over its
 *     Unix-domain socket, then the same batch runs one-shot on a
 *     SimFleet.  Every job must match bit-for-bit: run status,
 *     instruction count, architectural state hash, guest output, all
 *     eight interface counters, and the full per-job stats dump.
 *     Sliced jobs are compared against a fleet replay of the documented
 *     slice semantics (run `slice` instructions, flush cached decodes
 *     like a restore does); the checkpoint round trip itself must add
 *     nothing.  This is the service's version of the paper's
 *     single-specification claim: moving execution behind a daemon,
 *     admission queue, warm pool, and preemption store changes *where*
 *     simulation runs, never *what* it computes.
 *
 *  2. Throughput.  An open-loop arrival workload (arrivals on a fixed
 *     schedule at ~1.5x the daemon's calibrated service rate, so the
 *     bounded queue genuinely overflows) against a small admission
 *     queue: sustained jobs/sec, p50/p99 job latency
 *     (submit-to-result, queueing included -- that is what open-loop
 *     measures), rejection counts, one poisoned job (quarantine path),
 *     and sliced jobs (preemption under load).
 *
 * Emits BENCH_service.json; tools/check_bench_json.py enforces the
 * identity flag, jobs/sec > 0, p50 <= p99, and the accounting
 * invariant rejected + completed + quarantined == submitted.
 */

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "parallel/fleet.hpp"
#include "perf/hostcount.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"

using namespace onespec;
using namespace onespec::bench;
using onespec::parallel::FleetJob;
using onespec::parallel::FleetReport;
using onespec::parallel::SimFleet;
using onespec::service::ClientEvent;
using onespec::service::JobPhase;
using onespec::service::JobResult;
using onespec::service::JobSpec;
using onespec::service::ServiceClient;
using onespec::service::ServiceConfig;
using onespec::service::ServiceDaemon;
using onespec::service::SubmitOutcome;

namespace {

/** Shared accounting across both phases (the reported totals). */
struct Tally
{
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;   ///< clean results
    uint64_t quarantined = 0; ///< failed results
    uint64_t preempted = 0;   ///< Preempted status frames observed
    uint64_t resumed = 0;     ///< Resumed status frames observed
};

void
tallyEvent(Tally &t, const ClientEvent &ev)
{
    if (ev.kind == ClientEvent::Kind::Status) {
        if (ev.status.phase == JobPhase::Preempted)
            ++t.preempted;
        if (ev.status.phase == JobPhase::Resumed)
            ++t.resumed;
    } else if (ev.kind == ClientEvent::Kind::Result) {
        if (ev.result.quarantined)
            ++t.quarantined;
        else
            ++t.completed;
    }
}

/** The identity batch: every ISA x {fib, crc32, listsum}, fib sliced so
 *  it preempts several times through the store. */
std::vector<JobSpec>
identitySpecs(uint64_t max_instrs)
{
    std::vector<JobSpec> specs;
    for (const auto &isa : shippedIsas()) {
        for (const char *k : {"fib", "crc32", "listsum"}) {
            JobSpec s;
            s.name = isa + "/" + k;
            s.isa = isa;
            s.kernel = k;
            s.param = benchParam(k);
            s.maxInstrs = max_instrs;
            s.coldStats = true; // cache counters: pure function of job
            if (std::strcmp(k, "fib") == 0)
                s.sliceInstrs = std::max<uint64_t>(1, max_instrs / 7);
            specs.push_back(std::move(s));
        }
    }
    return specs;
}

/** Compare one service result against its fleet reference; prints the
 *  first divergence. */
bool
matches(const JobSpec &spec, const JobResult &got,
        const parallel::FleetResult &ref,
        const stats::StatsRegistry &refStats)
{
    auto miss = [&](const char *what, const std::string &g,
                    const std::string &r) {
        std::fprintf(stderr,
                     "identity MISMATCH %s: %s service=%s fleet=%s\n",
                     spec.name.c_str(), what, g.c_str(), r.c_str());
        return false;
    };
    if (got.quarantined)
        return miss("outcome", "quarantined:" + got.error, "ok");
    if (got.runStatus != ref.run.status)
        return miss("status", std::to_string(int(got.runStatus)),
                    std::to_string(int(ref.run.status)));
    if (got.instrs != ref.run.instrs)
        return miss("instrs", std::to_string(got.instrs),
                    std::to_string(ref.run.instrs));
    if (got.stateHash != ref.stateHash)
        return miss("state_hash", std::to_string(got.stateHash),
                    std::to_string(ref.stateHash));
    if (got.output != ref.output)
        return miss("output", got.output, ref.output);
    const IfaceCounters &a = got.counters, &b = ref.counters;
    if (a.executeCalls != b.executeCalls ||
        a.executeBlockCalls != b.executeBlockCalls ||
        a.stepCalls != b.stepCalls || a.customCalls != b.customCalls ||
        a.fastForwardCalls != b.fastForwardCalls ||
        a.undoCalls != b.undoCalls || a.instrs != b.instrs ||
        a.undoneInstrs != b.undoneInstrs)
        return miss("iface counters",
                    std::to_string(a.crossings()) + " crossings",
                    std::to_string(b.crossings()) + " crossings");
    std::ostringstream rs;
    refStats.dump(rs);
    if (got.statsDump != rs.str())
        return miss("stats dump",
                    "\n" + got.statsDump, "\n" + rs.str());
    return true;
}

/** Phase 1: the daemon-vs-fleet identity gate. */
bool
runIdentity(const std::string &base, unsigned workers,
            uint64_t max_instrs, Tally &tally)
{
    ServiceConfig cfg;
    cfg.socketPath = base + "/ident.sock";
    cfg.storeDir = base + "/ident_store";
    cfg.workers = workers;
    ServiceDaemon daemon(cfg);
    daemon.start();

    std::vector<JobSpec> specs = identitySpecs(max_instrs);
    ServiceClient client;
    client.connect(cfg.socketPath, "identity");
    std::map<uint64_t, size_t> byJob; // daemon job id -> spec index
    for (size_t i = 0; i < specs.size(); ++i) {
        SubmitOutcome o = client.submit(specs[i]);
        ++tally.submitted;
        if (!o.accepted) {
            std::fprintf(stderr, "identity submit rejected: %s\n",
                         o.reject.reason.c_str());
            ++tally.rejected;
            return false;
        }
        byJob[o.jobId] = i;
    }
    std::vector<JobResult> got(specs.size());
    size_t have = 0;
    ClientEvent ev;
    while (have < specs.size() && client.next(ev)) {
        tallyEvent(tally, ev);
        if (ev.kind == ClientEvent::Kind::Result) {
            got[byJob.at(ev.result.jobId)] = ev.result;
            ++have;
        }
    }
    daemon.stop();
    if (have != specs.size())
        return false;

    // The one-shot reference on a plain SimFleet (sliced jobs replay
    // the slice semantics; see the file comment).
    std::vector<FleetJob> jobs;
    for (const JobSpec &s : specs) {
        IsaWorkloads &w = workloadsFor(s.isa);
        const Program *prog = nullptr;
        for (const auto &[kname, p] : w.programs)
            if (kname == s.kernel)
                prog = &p;
        FleetJob j;
        j.spec = w.spec.get();
        j.program = prog;
        j.buildset = s.buildset;
        j.maxInstrs = s.maxInstrs;
        j.name = s.name;
        if (s.sliceInstrs) {
            const uint64_t slice = s.sliceInstrs, cap = s.maxInstrs;
            j.body = [slice, cap](SimContext &, FunctionalSimulator &sim,
                                  parallel::FleetResult &out,
                                  stats::StatsRegistry &) {
                uint64_t done = 0;
                while (true) {
                    RunResult r = sim.run(std::min(slice, cap - done));
                    done += r.instrs;
                    out.run.status = r.status;
                    if (r.status != RunStatus::Ok || done >= cap ||
                        r.instrs == 0)
                        break;
                    sim.onStateRestored();
                }
                out.run.instrs = done;
            };
        }
        jobs.push_back(std::move(j));
    }
    SimFleet fleet(workers);
    FleetReport rep = fleet.run(jobs);

    bool ok = true;
    for (size_t i = 0; i < specs.size(); ++i)
        ok &= matches(specs[i], got[i], rep.results[i],
                      *rep.jobStats[i]);
    return ok;
}

/** Phase 2: open-loop throughput against a small admission queue. */
struct Throughput
{
    double jobsPerSec = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    uint32_t queueDepth = 0;
};

Throughput
runThroughput(const std::string &base, unsigned workers, bool smoke,
              Tally &tally)
{
    ServiceConfig cfg;
    cfg.socketPath = base + "/load.sock";
    cfg.storeDir = base + "/load_store";
    cfg.workers = workers;
    cfg.queueDepth = smoke ? 4 : 8;
    cfg.tenantQuota = 1u << 20; // pressure comes from the queue bound
    ServiceDaemon daemon(cfg);
    daemon.start();

    const uint64_t maxInstrs = smoke ? 40'000 : 400'000;
    const size_t arrivals = smoke ? 60 : 400;
    const char *kernels[] = {"fib", "crc32", "sieve", "listsum",
                             "strhash"};
    auto mkSpec = [&](size_t i) {
        JobSpec s;
        const auto &isas = shippedIsas();
        s.isa = isas[i % isas.size()];
        s.kernel = kernels[i % (sizeof(kernels) / sizeof(*kernels))];
        s.name = s.isa + "/" + s.kernel;
        s.param = benchParam(s.kernel);
        s.maxInstrs = maxInstrs;
        if (i % 5 == 0) // every 5th job preempts twice under load
            s.sliceInstrs = maxInstrs / 3 + 1;
        if (i == 7) // one poisoned job: the quarantine path under load
            s.buildset = "__poisoned__";
        return s;
    };

    ServiceClient client;
    client.connect(cfg.socketPath, "load");
    Stopwatch clock;
    clock.start();
    std::map<uint64_t, uint64_t> submitNs; // job id -> submit time
    std::vector<double> latencyMs;
    ClientEvent ev;
    auto drain = [&](int timeout_ms) {
        while (client.poll(ev, timeout_ms)) {
            tallyEvent(tally, ev);
            if (ev.kind == ClientEvent::Kind::Result) {
                latencyMs.push_back(
                    double(clock.elapsedNs() -
                           submitNs.at(ev.result.jobId)) /
                    1e6);
                submitNs.erase(ev.result.jobId);
            }
            if (timeout_ms == 0)
                continue;
            if (submitNs.empty())
                break;
        }
    };

    // Calibrate the service rate closed-loop, then arrive at 1.5x it.
    const size_t calJobs = smoke ? 6 : 20;
    const uint64_t calStart = clock.elapsedNs();
    for (size_t i = 0; i < calJobs; ++i) {
        SubmitOutcome o = client.submit(mkSpec(i + 1));
        ++tally.submitted;
        if (o.accepted) {
            submitNs[o.jobId] = clock.elapsedNs();
            drain(-1); // closed loop: wait for this job's result
        } else {
            ++tally.rejected;
        }
    }
    const double calRate = double(calJobs) * 1e9 /
                           double(clock.elapsedNs() - calStart);
    const uint64_t gapNs =
        calRate > 0 ? uint64_t(1e9 / (calRate * 1.5)) : 1'000'000;

    // Open loop: arrivals on the fixed schedule no matter how the
    // daemon is doing -- that is what makes the p99 honest.
    const uint64_t loadStart = clock.elapsedNs();
    uint64_t nextArrival = loadStart;
    for (size_t i = 0; i < arrivals; ++i) {
        while (clock.elapsedNs() < nextArrival)
            drain(0); // keep the event stream moving between arrivals
        nextArrival += gapNs;
        SubmitOutcome o = client.submit(mkSpec(i));
        ++tally.submitted;
        if (o.accepted)
            submitNs[o.jobId] = clock.elapsedNs();
        else
            ++tally.rejected;
        drain(0);
    }
    while (!submitNs.empty())
        drain(-1);
    const uint64_t loadNs = clock.elapsedNs() - loadStart;
    daemon.stop();

    Throughput t;
    t.queueDepth = cfg.queueDepth;
    std::sort(latencyMs.begin(), latencyMs.end());
    if (!latencyMs.empty()) {
        t.p50Ms = latencyMs[latencyMs.size() / 2];
        t.p99Ms = latencyMs[std::min(latencyMs.size() - 1,
                                     latencyMs.size() * 99 / 100)];
    }
    // Sustained rate over the open-loop window (results delivered,
    // clean or quarantined; rejects are not work done).
    size_t delivered = latencyMs.size() > calJobs
                           ? latencyMs.size() - calJobs
                           : 0;
    t.jobsPerSec = loadNs ? double(delivered) * 1e9 / double(loadNs)
                          : 0.0;
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    unsigned workers = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--workers") == 0 &&
                   i + 1 < argc) {
            workers = unsigned(std::strtoul(argv[++i], nullptr, 0));
        } else {
            std::fprintf(stderr,
                         "usage: bench_service [--smoke] [--workers N] "
                         "[--json FILE]\n");
            return 2;
        }
    }
    if (workers == 0)
        workers = parallel::hardwareThreads();

    auto base = std::filesystem::temp_directory_path() /
                ("onespec_bench_svc_" +
                 std::to_string(static_cast<unsigned long>(::getpid())));
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base);

    BenchReport report("service");
    report.setParam("smoke", stats::Json(smoke));
    report.setParam("workers", stats::Json(uint64_t{workers}));

    Tally tally;
    const uint64_t identInstrs = smoke ? 60'000 : 1'000'000;
    std::printf("identity: mixed batch through the daemon vs one-shot "
                "fleet (%u workers)...\n", workers);
    bool identity = runIdentity(base.string(), workers, identInstrs,
                                tally);
    std::printf("identity: %s (%llu preemptions observed)\n",
                identity ? "bit-identical" : "MISMATCH",
                static_cast<unsigned long long>(tally.preempted));

    std::printf("throughput: open-loop arrivals at 1.5x calibrated "
                "service rate...\n");
    Throughput t = runThroughput(base.string(), workers, smoke, tally);
    std::printf(
        "throughput: %.1f jobs/sec sustained, p50 %.2f ms, p99 %.2f ms\n"
        "  %llu submitted / %llu completed / %llu rejected / %llu "
        "quarantined / %llu preempted\n",
        t.jobsPerSec, t.p50Ms, t.p99Ms,
        static_cast<unsigned long long>(tally.submitted),
        static_cast<unsigned long long>(tally.completed),
        static_cast<unsigned long long>(tally.rejected),
        static_cast<unsigned long long>(tally.quarantined),
        static_cast<unsigned long long>(tally.preempted));

    stats::Json svc = stats::Json::object();
    svc.set("jobs_per_sec", stats::Json(t.jobsPerSec));
    svc.set("p50_ms", stats::Json(t.p50Ms));
    svc.set("p99_ms", stats::Json(t.p99Ms));
    svc.set("identity", stats::Json(identity));
    svc.set("submitted", stats::Json(tally.submitted));
    svc.set("completed", stats::Json(tally.completed));
    svc.set("rejected", stats::Json(tally.rejected));
    svc.set("quarantined", stats::Json(tally.quarantined));
    svc.set("preempted", stats::Json(tally.preempted));
    svc.set("resumed", stats::Json(tally.resumed));
    svc.set("workers", stats::Json(uint64_t{workers}));
    svc.set("queue_depth", stats::Json(uint64_t{t.queueDepth}));
    report.addResult("service", std::move(svc));
    report.write(json_path);

    std::filesystem::remove_all(base);
    return identity ? 0 : 1;
}
