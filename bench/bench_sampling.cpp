/**
 * @file
 * The sampling use case that motivates multiple interfaces per timing
 * simulator (paper Sections I-II): detailed simulation for small windows,
 * fast-forwarding between them.  During fast-forward the timing simulator
 * needs almost nothing from the functional simulator, so the tailored
 * low-detail interface (Block/Min/No fastForward) should beat driving
 * the detailed interface (Step/All/No) for the whole run by a wide
 * margin -- functional simulation is the fast-forward bottleneck.
 *
 * Sweeps the detailed-window fraction and reports effective MIPS with
 * (a) the tailored pair of interfaces and (b) the detailed interface
 * used for everything ("one-size-fits-all").
 */

#include <cstdio>
#include <cstring>

#include "benchcommon.hpp"

using namespace onespec;
using namespace onespec::bench;

namespace {

/** Run with detailed windows of @p window instrs every @p period. */
Measurement
runSampled(SimContext &ctx, FunctionalSimulator &detailed,
           FunctionalSimulator *fast, const Program &prog,
           uint64_t min_instrs, uint64_t window, uint64_t period)
{
    ctx.load(prog);
    Measurement m;
    Stopwatch sw;
    sw.start();
    RunStatus st = RunStatus::Ok;
    while (m.instrs < min_instrs && st == RunStatus::Ok) {
        // Detailed window via the step-level interface.
        uint64_t done = 0;
        DynInst di;
        while (done < window && st == RunStatus::Ok) {
            for (unsigned s = 0; s < kNumSteps && st == RunStatus::Ok;
                 ++s) {
                st = detailed.step(static_cast<Step>(s), di);
            }
            ++done;
        }
        m.instrs += done;
        if (st != RunStatus::Ok)
            break;
        // Fast-forward.
        uint64_t ff = period - window;
        if (fast) {
            m.instrs += fast->fastForward(ff, st);
        } else {
            uint64_t k = 0;
            DynInst di2;
            while (k < ff && st == RunStatus::Ok) {
                for (unsigned s = 0; s < kNumSteps && st == RunStatus::Ok;
                     ++s) {
                    st = detailed.step(static_cast<Step>(s), di2);
                }
                ++k;
            }
            m.instrs += k;
        }
        if (st == RunStatus::Halted) {
            // Kernel finished: restart to keep measuring.
            ctx.load(prog);
            st = RunStatus::Ok;
        }
    }
    m.ns = sw.elapsedNs();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t min_instrs = 2'000'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc)
            min_instrs = std::strtoull(argv[++i], nullptr, 0);
    }

    std::printf("SAMPLING: TAILORED FAST-FORWARD INTERFACE vs "
                "ONE-SIZE-FITS-ALL\n");
    std::printf("(detailed window = 1000 instrs; period swept; "
                "workload: sieve)\n\n");
    std::printf("%-10s %10s %16s %16s %9s\n", "ISA", "detail%",
                "tailored MIPS", "detailed MIPS", "speedup");

    const uint64_t window = 1000;
    for (const auto &isa : shippedIsas()) {
        IsaWorkloads &w = workloadsFor(isa);
        const Program &prog = w.programs[1].second; // sieve

        for (uint64_t period : {1000ull, 10'000ull, 100'000ull,
                                1'000'000ull}) {
            SimContext ctx1(*w.spec);
            ctx1.load(prog);
            auto det1 = SimRegistry::instance().create(ctx1, "StepAllNo");
            auto fast = SimRegistry::instance().create(ctx1, "BlockMinNo");
            Measurement tailored =
                runSampled(ctx1, *det1, fast.get(), prog, min_instrs,
                           window, period);

            SimContext ctx2(*w.spec);
            ctx2.load(prog);
            auto det2 = SimRegistry::instance().create(ctx2, "StepAllNo");
            Measurement allstep = runSampled(
                ctx2, *det2, nullptr, prog, min_instrs, window, period);

            double frac =
                100.0 * static_cast<double>(window) / period;
            std::printf("%-10s %9.1f%% %16.2f %16.2f %8.2fx\n",
                        isa.c_str(), frac, tailored.mips(),
                        allstep.mips(),
                        allstep.mips() > 0
                            ? tailored.mips() / allstep.mips()
                            : 0.0);
        }
    }
    std::printf("\nAs detail%% falls, the tailored pair approaches pure "
                "fast-forward speed while the one-size-fits-all\n"
                "simulator stays pinned at detailed-interface speed -- "
                "the paper's motivation for deriving a second,\n"
                "low-detail interface from the same specification.\n");
    return 0;
}
