/**
 * @file
 * Table III reproduction: the cost of interface detail per simulated
 * instruction.  The paper reports host instructions (measured on real
 * hardware); when the container denies perf_event_open we report wall
 * nanoseconds per simulated instruction instead -- the *incremental*
 * structure (which details cost what, and the sign of the block-call
 * saving) is what the table is about.
 */

#include <cstdio>
#include <cstring>

#include "benchcommon.hpp"
#include "benchreport.hpp"

using namespace onespec;
using namespace onespec::bench;

int
main(int argc, char **argv)
{
    uint64_t min_instrs = 2'000'000;
    int repeats = 3;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            min_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            min_instrs = 60'000;
            repeats = 1;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    bool hw = hostCounterAvailable();
    const char *unit = hw ? "host instructions" : "ns (wall clock)";
    std::printf("TABLE III: COSTS OF DETAIL (%s per simulated "
                "instruction)\n",
                unit);
    if (!hw) {
        std::printf("note: perf_event_open unavailable in this "
                    "environment; falling back to wall-clock time.\n");
    }
    std::printf("\n");

    const auto &isas = shippedIsas();

    BenchReport report("table3");
    report.setParam("min_instrs", stats::Json(min_instrs));
    report.setParam("unit", stats::Json(std::string(unit)));

    auto cost = [&](const std::string &isa, const char *bs) {
        CellResult c =
            measureCellFull(isa, bs, min_instrs, repeats, hw);
        report.addCell(isa, bs, c);
        return hw ? c.hostPerSim : c.nsPerSim;
    };

    std::printf("%-38s", "");
    for (const auto &isa : isas)
        std::printf(" %10s", isa.c_str());
    std::printf("\n");

    std::vector<double> base, dec, all, blk, step_all, one_all;
    std::vector<double> spec_cost;
    for (const auto &isa : isas) {
        base.push_back(cost(isa, "OneMinNo"));
        dec.push_back(cost(isa, "OneDecNo"));
        all.push_back(cost(isa, "OneAllNo"));
        blk.push_back(cost(isa, "BlockMinNo"));
        step_all.push_back(cost(isa, "StepAllNo"));
        spec_cost.push_back(cost(isa, "OneAllYes") -
                            cost(isa, "OneAllNo"));
    }

    auto row = [&](const char *label, auto fn) {
        std::printf("%-38s", label);
        stats::Json vals = stats::Json::object();
        for (size_t i = 0; i < isas.size(); ++i) {
            std::printf(" %10.2f", fn(i));
            vals.set(isas[i], stats::Json(fn(i)));
        }
        report.addResult(label, std::move(vals));
        std::printf("\n");
    };

    row("Base cost for instruction (One/Min/No)",
        [&](size_t i) { return base[i]; });
    row("Incremental cost of decode information",
        [&](size_t i) { return dec[i] - base[i]; });
    row("Incremental cost of full information",
        [&](size_t i) { return all[i] - base[i]; });
    row("Incremental cost of block-call",
        [&](size_t i) { return blk[i] - base[i]; });
    row("Incremental cost of multiple calls",
        [&](size_t i) { return step_all[i] - all[i]; });
    row("Incremental cost of speculation",
        [&](size_t i) { return spec_cost[i]; });

    std::printf("\nPaper (host instructions, Alpha/ARM/PowerPC): base "
                "103.98/134.95/143.61; decode +46.17/+53.77/+63.10;\n"
                "full info +150.51/+268.48/+221.5; block-call "
                "-52.28/-49.73/-49.87; multiple calls "
                "+237.7/+222.7/+213.1;\n"
                "speculation +14.75/+32.66/+27.32.  Expected shape: "
                "block-call is negative (a saving), multiple calls are\n"
                "the most expensive detail, speculation the least.\n");
    report.write(json_path);
    return 0;
}
