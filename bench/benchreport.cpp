#include "benchreport.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>

#include "benchcommon.hpp"
#include "stats/stats.hpp"

#ifndef ONESPEC_GIT_SHA
#define ONESPEC_GIT_SHA "unknown"
#endif
#ifndef ONESPEC_BUILD_TYPE
#define ONESPEC_BUILD_TYPE "unknown"
#endif

namespace onespec::bench {

namespace {

const char *
semanticName(SemanticLevel s)
{
    switch (s) {
    case SemanticLevel::Block: return "Block";
    case SemanticLevel::One: return "One";
    case SemanticLevel::Step: return "Step";
    case SemanticLevel::Custom: return "Custom";
    }
    return "?";
}

const char *
infoName(InfoLevel i)
{
    switch (i) {
    case InfoLevel::Min: return "Min";
    case InfoLevel::Decode: return "Decode";
    case InfoLevel::All: return "All";
    case InfoLevel::Custom: return "Custom";
    }
    return "?";
}

/** Look up a registry counter under @p path; 0 if absent. */
uint64_t
registryCounter(const std::string &path)
{
    auto *st = stats::StatsRegistry::global().resolve(path);
    if (st && st->kind() == stats::StatKind::Counter)
        return static_cast<const stats::Counter *>(st)->value();
    return 0;
}

} // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name))
{
    meta_.set("git_sha", stats::Json(std::string(ONESPEC_GIT_SHA)));
    meta_.set("compiler", stats::Json(std::string(__VERSION__)));
    meta_.set("build_type", stats::Json(std::string(ONESPEC_BUILD_TYPE)));
    meta_.set("host_counter",
              stats::Json(hostCounterAvailable()));
    std::time_t now = std::time(nullptr);
    char buf[32];
    if (std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ",
                      std::gmtime(&now)))
        meta_.set("timestamp_utc", stats::Json(std::string(buf)));
}

void
BenchReport::setParam(const std::string &key, stats::Json value)
{
    meta_.set(key, std::move(value));
}

void
BenchReport::addCell(const std::string &isa, const std::string &buildset,
                     const CellResult &r)
{
    stats::Json cell = stats::Json::object();
    cell.set("isa", stats::Json(isa));
    cell.set("buildset", stats::Json(buildset));
    if (const BuildsetInfo *bs = workloadsFor(isa).spec->findBuildset(buildset)) {
        cell.set("semantic",
                 stats::Json(std::string(semanticName(bs->semantic))));
        cell.set("info", stats::Json(std::string(infoName(bs->info))));
        cell.set("speculation", stats::Json(bs->speculation));
    }
    cell.set("mips", stats::Json(r.mips));
    cell.set("ns_per_sim", stats::Json(r.nsPerSim));
    if (r.hostCounted)
        cell.set("host_per_sim", stats::Json(r.hostPerSim));
    cell.set("instrs", stats::Json(r.instrs));

    // Interface counters come from the registry group this cell's
    // simulators published into -- the JSON is a projection of the same
    // stats tree the text dump prints, not a second bookkeeping path.
    const std::string base = cellGroupPath(isa, buildset) + ".";
    stats::Json iface = stats::Json::object();
    static const char *const kCounters[] = {
        "execute_calls", "execute_block_calls", "step_calls",
        "custom_calls",  "fast_forward_calls",  "undo_calls",
        "crossings",     "instrs",              "undone_instrs",
    };
    for (const char *c : kCounters)
        iface.set(c, stats::Json(registryCounter(base + c)));
    uint64_t crossings = registryCounter(base + "crossings");
    uint64_t instrs = registryCounter(base + "instrs");
    iface.set("instrs_per_crossing",
              stats::Json(crossings ? static_cast<double>(instrs) /
                                          static_cast<double>(crossings)
                                    : 0.0));
    cell.set("iface", std::move(iface));
    cells_.push_back(std::move(cell));
}

void
BenchReport::addResult(const std::string &key, stats::Json value)
{
    results_.set(key, std::move(value));
}

stats::Json
BenchReport::toJson() const
{
    stats::Json root = stats::Json::object();
    root.set("schema_version", stats::Json(static_cast<uint64_t>(1)));
    root.set("bench", stats::Json(name_));
    root.set("meta", meta_);

    stats::Json cells = stats::Json::array();
    for (const auto &c : cells_)
        cells.push(c);
    root.set("cells", std::move(cells));

    // Geomean MIPS per buildset across ISAs (the per-row summary the
    // paper's prose quotes).
    std::map<std::string, std::vector<double>> byBuildset;
    for (const auto &c : cells_) {
        const stats::Json *bsv = c.find("buildset");
        const stats::Json *mv = c.find("mips");
        if (bsv && mv && mv->asDouble() > 0)
            byBuildset[bsv->asString()].push_back(mv->asDouble());
    }
    stats::Json geo = stats::Json::object();
    for (const auto &[bs, xs] : byBuildset)
        geo.set(bs, stats::Json(geomean(xs)));
    root.set("geomean_mips", std::move(geo));

    if (!results_.members().empty())
        root.set("results", results_);

    root.set("stats", stats::StatsRegistry::global().toJson());
    return root;
}

std::string
BenchReport::write(const std::string &path) const
{
    std::string out = path;
    if (out.empty()) {
        const char *dir = std::getenv("ONESPEC_BENCH_JSON_DIR");
        out = dir && *dir ? std::string(dir) + "/BENCH_" + name_ + ".json"
                          : "BENCH_" + name_ + ".json";
    }
    std::ofstream f(out);
    if (!f) {
        std::fprintf(stderr, "benchreport: cannot write %s\n",
                     out.c_str());
        return "";
    }
    f << toJson().dump(2) << "\n";
    if (!f.good()) {
        std::fprintf(stderr, "benchreport: write to %s failed\n",
                     out.c_str());
        return "";
    }
    std::fprintf(stderr, "[bench json: %s]\n", out.c_str());
    return out;
}

} // namespace onespec::bench
