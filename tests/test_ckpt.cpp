/**
 * @file
 * Checkpoint/restore subsystem tests: container round trips, hard
 * rejection of damaged/mismatched containers, delta-chain semantics,
 * resume-equals-uninterrupted determinism, and parallel restore on the
 * fleet (bit-identity at every thread count).  The fleet cases carry the
 * `tsan` ctest label; re-run them under -DONESPEC_SANITIZE=thread.
 */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "ckpt/store.hpp"
#include "iface/registry.hpp"
#include "support/crc32.hpp"
#include "isa/isa.hpp"
#include "parallel/ckpt_sampling.hpp"
#include "parallel/fleet.hpp"
#include "stats/stats.hpp"
#include "timing/sampling.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

namespace onespec {
namespace {

using parallel::CkptSamplingConfig;
using parallel::CkptSamplingResult;
using parallel::FleetJob;
using parallel::FleetReport;
using parallel::SimFleet;

constexpr const char *kBuildset = "BlockMinNo";

/** Shared expensive state: one spec + kernel per ISA under test. */
class CkptTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        spec_ = loadIsa("alpha64").release();
        auto b = makeBuilder(*spec_);
        prog_ = new Program(buildKernel(*b, "fib", 25'000));
        auto b2 = makeBuilder(*spec_);
        other_ = new Program(buildKernel(*b2, "crc32", 500));
    }

    static void
    TearDownTestSuite()
    {
        delete prog_;
        delete other_;
        delete spec_;
        prog_ = other_ = nullptr;
        spec_ = nullptr;
    }

    /** Fresh context + simulator, advanced @p instrs into the kernel. */
    static std::unique_ptr<FunctionalSimulator>
    runTo(SimContext &ctx, uint64_t instrs, const Program &prog = *prog_)
    {
        ctx.load(prog);
        auto sim = SimRegistry::instance().create(ctx, kBuildset);
        if (!sim)
            return nullptr;
        if (instrs) {
            RunResult r = sim->run(instrs);
            EXPECT_EQ(static_cast<int>(r.status),
                      static_cast<int>(RunStatus::Ok))
                << "kernel ended before the checkpoint point";
        }
        return sim;
    }

    static Spec *spec_;
    static Program *prog_;
    static Program *other_;
};

Spec *CkptTest::spec_ = nullptr;
Program *CkptTest::prog_ = nullptr;
Program *CkptTest::other_ = nullptr;

// ---------------------------------------------------------------------
// Container round trips and rejection of damaged containers
// ---------------------------------------------------------------------

TEST_F(CkptTest, EncodeDecodeRoundTripIsLossless)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 20'000);
    ASSERT_NE(sim, nullptr);

    ckpt::Checkpoint ck = ckpt::capture(ctx);
    std::vector<uint8_t> bytes = ckpt::encode(ck);
    ckpt::Checkpoint rt = ckpt::decode(bytes);

    EXPECT_EQ(rt.id, ck.id);
    EXPECT_EQ(rt.parentId, 0u);
    EXPECT_FALSE(rt.delta);
    EXPECT_EQ(rt.specFingerprint, ck.specFingerprint);
    EXPECT_EQ(rt.specName, "alpha64");
    EXPECT_EQ(rt.instrsRetired, 20'000u);
    EXPECT_EQ(rt.epochMark, ck.epochMark);
    EXPECT_EQ(rt.pc, ck.pc);
    EXPECT_EQ(rt.words, ck.words);
    EXPECT_EQ(rt.os.brk, ck.os.brk);
    EXPECT_EQ(rt.os.timeMs, ck.os.timeMs);
    EXPECT_EQ(rt.os.inputPos, ck.os.inputPos);
    EXPECT_EQ(rt.os.output, ck.os.output);
    EXPECT_EQ(rt.os.syscallCount, ck.os.syscallCount);
    ASSERT_EQ(rt.pages.size(), ck.pages.size());
    for (size_t i = 0; i < ck.pages.size(); ++i) {
        EXPECT_EQ(rt.pages[i].idx, ck.pages[i].idx);
        EXPECT_EQ(rt.pages[i].bytes, ck.pages[i].bytes);
    }
    EXPECT_TRUE(ckpt::verifyId(rt));
}

TEST_F(CkptTest, CorruptedPayloadByteIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    std::vector<uint8_t> bytes = ckpt::encode(ckpt::capture(ctx));

    // Flip one byte deep in the last section's payload: only the
    // per-section CRC can catch this.
    bytes[bytes.size() - 100] ^= 0x40;
    try {
        (void)ckpt::decode(bytes);
        FAIL() << "corrupted container decoded without error";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("CRC mismatch"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(CkptTest, TruncatedContainerIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    std::vector<uint8_t> bytes = ckpt::encode(ckpt::capture(ctx));

    // Every truncation length must throw, never crash or succeed.
    for (size_t keep : {size_t{0}, size_t{4}, size_t{7}, size_t{64},
                        bytes.size() / 2, bytes.size() - 1})
        EXPECT_THROW((void)ckpt::decode(std::vector<uint8_t>(
                         bytes.begin(), bytes.begin() + keep)),
                     ckpt::CkptError)
            << "kept " << keep << " bytes";
}

TEST_F(CkptTest, UnknownFormatVersionIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    std::vector<uint8_t> bytes = ckpt::encode(ckpt::capture(ctx));

    // Version field sits right after the 8-byte magic (little-endian).
    bytes[8] = 0x7f;
    try {
        (void)ckpt::decode(bytes);
        FAIL() << "future-version container decoded without error";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "unsupported checkpoint format version"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(CkptTest, BadMagicIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    std::vector<uint8_t> bytes = ckpt::encode(ckpt::capture(ctx));
    bytes[0] ^= 0xff;
    EXPECT_THROW((void)ckpt::decode(bytes), ckpt::CkptError);
}

TEST_F(CkptTest, VerifyIdDetectsHeaderContentMismatch)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);
    EXPECT_TRUE(ckpt::verifyId(ck));
    ck.words[0] ^= 1; // state no longer matches the recorded identity
    EXPECT_FALSE(ckpt::verifyId(ck));
}

// ---------------------------------------------------------------------
// OSPCKPT2: block codec, v1 compatibility, content-addressed store
// ---------------------------------------------------------------------

namespace {

/** Little-endian u32 read/write over a container image. */
uint32_t
rdU32(const std::vector<uint8_t> &b, size_t off)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(b[off + i]) << (8 * i);
    return v;
}

void
wrU32(std::vector<uint8_t> &b, size_t off, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[off + i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t
rdU64(const std::vector<uint8_t> &b, size_t off)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(b[off + i]) << (8 * i);
    return v;
}

/**
 * Recompute every section CRC and the header CRC of a container after a
 * deliberate payload edit, re-deriving the layout from the byte offsets
 * docs/CKPT_FORMAT.md specifies (a drift here means the spec document
 * rotted).  Leaves only the intended damage for the decoder to find.
 */
void
refreshCrcs(std::vector<uint8_t> &bytes)
{
    const uint32_t nameLen = rdU32(bytes, 56);
    const size_t tableOff = 60 + nameLen + 4;
    const uint32_t nsec = rdU32(bytes, 60 + nameLen);
    for (uint32_t i = 0; i < nsec; ++i) {
        const size_t e = tableOff + i * 24;
        const uint64_t off = rdU64(bytes, e + 4);
        const uint64_t len = rdU64(bytes, e + 12);
        wrU32(bytes, e + 20, crc32(0, bytes.data() + off, len));
    }
    const size_t hdrCrcOff = tableOff + nsec * 24;
    wrU32(bytes, hdrCrcOff, crc32(0, bytes.data(), hdrCrcOff));
}

/** Temp dir under the system temp root, wiped on construction. */
std::filesystem::path
freshDir(const char *name)
{
    auto p = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(p);
    return p;
}

} // namespace

TEST_F(CkptTest, V1ContainerRoundTripAndRestore)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 20'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);

    ckpt::EncodeOptions v1;
    v1.version = ckpt::kFormatVersionV1;
    std::vector<uint8_t> bytes = ckpt::encode(ck, v1);
    // The legacy container as the seed code wrote it: OSPCKPT1 magic,
    // version field 1, raw page images (pages dominate the size).
    ASSERT_GE(bytes.size(), 12u);
    EXPECT_EQ(std::string(bytes.begin(), bytes.begin() + 8), "OSPCKPT1");
    EXPECT_EQ(rdU32(bytes, 8), 1u);
    EXPECT_GE(bytes.size(), ck.pages.size() * Memory::kPageSize);

    // The v2 reader restores it unchanged.
    ckpt::Checkpoint rt = ckpt::decode(bytes);
    EXPECT_EQ(rt.id, ck.id);
    EXPECT_EQ(rt.pc, ck.pc);
    EXPECT_EQ(rt.words, ck.words);
    ASSERT_EQ(rt.pages.size(), ck.pages.size());
    for (size_t i = 0; i < ck.pages.size(); ++i) {
        EXPECT_EQ(rt.pages[i].idx, ck.pages[i].idx);
        EXPECT_EQ(rt.pages[i].bytes, ck.pages[i].bytes);
    }
    EXPECT_TRUE(ckpt::verifyId(rt));

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    auto fsim = SimRegistry::instance().create(fresh, kBuildset);
    ASSERT_NE(fsim, nullptr);
    ckpt::restore(fresh, rt);
    fsim->onStateRestored();
    RunResult fr = fsim->run(~uint64_t{0});
    EXPECT_EQ(static_cast<int>(fr.status),
              static_cast<int>(RunStatus::Halted));
    EXPECT_EQ(fresh.os().output(), goldenOutput("fib", 25'000));
}

TEST_F(CkptTest, V2ContainerIsSmallerThanV1)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 20'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);
    ckpt::EncodeOptions v1;
    v1.version = ckpt::kFormatVersionV1;
    const size_t v1Size = ckpt::encode(ck, v1).size();
    const size_t v2Size = ckpt::encode(ck).size();
    // Guest pages are mostly sparse; block coding must win clearly.
    EXPECT_LT(v2Size, v1Size);
}

TEST_F(CkptTest, BlockCodecRoundTripsEveryEncoding)
{
    using namespace ckpt::codec;
    // One buffer exercising all four tags: zero blocks, a fill block, an
    // RLE-friendly block of long runs, and an incompressible block.
    std::vector<uint8_t> raw(4 * kBlockSize + 123, 0);
    std::fill_n(raw.begin() + kBlockSize, kBlockSize, uint8_t{0xAB});
    for (size_t i = 0; i < kBlockSize; ++i)
        raw[2 * kBlockSize + i] = static_cast<uint8_t>((i / 300) * 17);
    uint32_t lcg = 0xC0FFEE;
    for (size_t i = 0; i < kBlockSize; ++i) {
        lcg = lcg * 1664525u + 1013904223u;
        raw[3 * kBlockSize + i] = static_cast<uint8_t>(lcg >> 24);
    }
    // Final short block (123 bytes) stays zero.

    CodecStats enc;
    std::vector<uint8_t> stream;
    encodeStream(stream, raw.data(), raw.size(), &enc);
    EXPECT_GE(enc.zero, 2u);
    EXPECT_EQ(enc.fill, 1u);
    EXPECT_EQ(enc.rle, 1u);
    EXPECT_EQ(enc.raw, 1u);
    EXPECT_EQ(enc.blocks(), 5u);
    EXPECT_LT(stream.size(), raw.size());

    CodecStats dec;
    std::vector<uint8_t> back(raw.size(), 0xFF);
    size_t consumed = 0;
    decodeStream(stream.data(), stream.size(), consumed, back.data(),
                 raw.size(), &dec);
    EXPECT_EQ(consumed, stream.size());
    EXPECT_EQ(back, raw);
    EXPECT_EQ(dec.blocks(), enc.blocks());

    // scanStream validates and accounts without materializing.
    CodecStats scan;
    consumed = 0;
    EXPECT_EQ(scanStream(stream.data(), stream.size(), consumed, &scan),
              raw.size());
    EXPECT_EQ(scan.raw, enc.raw);
    EXPECT_EQ(scan.rle, enc.rle);
}

TEST_F(CkptTest, CorruptCompressedBlockIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    std::vector<uint8_t> bytes = ckpt::encode(ckpt::capture(ctx));
    ckpt::ContainerInfo info = ckpt::inspect(bytes);
    uint64_t memOff = 0;
    for (const auto &s : info.sections)
        if (s.name == "MEM ")
            memOff = s.offset;
    ASSERT_GT(memOff, 0u);

    // Damage the page map's stream framing (its decoded-length field at
    // MEM+34 per docs/CKPT_FORMAT.md), then *repair every CRC* so only
    // the structural block validation can catch it.
    bytes[memOff + 34] ^= 0x01;
    refreshCrcs(bytes);
    try {
        (void)ckpt::decode(bytes);
        FAIL() << "corrupt compressed block decoded without error";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("corrupt compressed block"),
                  std::string::npos)
            << e.what();
    }

    // An unknown block tag inside the stream is equally fatal.  The map
    // stream's first tag byte sits at MEM+42 (after the two framing
    // words).
    std::vector<uint8_t> bytes2 = ckpt::encode(ckpt::capture(ctx));
    bytes2[memOff + 42] = 0x7E;
    refreshCrcs(bytes2);
    try {
        (void)ckpt::decode(bytes2);
        FAIL() << "unknown block tag decoded without error";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("corrupt compressed block"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(CkptTest, StoreRoundTripAndDedupAccounting)
{
    auto dir = freshDir("onespec_test_store");
    ckpt::CkptStore store(dir.string());
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);

    ckpt::CkptCounters c;
    store.save("first", ck, &c);
    EXPECT_EQ(c.storePagePuts, ck.pages.size());
    const uint64_t blobsAfterFirst = store.pageBlobCount();
    EXPECT_EQ(blobsAfterFirst + c.storePageDedupHits, c.storePagePuts);

    // Identical content saved again: zero new blobs, all puts are hits.
    store.save("second", ck, &c);
    EXPECT_EQ(c.storePagePuts, 2 * ck.pages.size());
    EXPECT_EQ(store.pageBlobCount(), blobsAfterFirst);
    EXPECT_GE(c.storePageDedupHits, ck.pages.size());

    // Loading resolves every reference back to the exact pages.
    ckpt::Checkpoint rt = store.load("first", &c);
    EXPECT_EQ(rt.id, ck.id);
    ASSERT_EQ(rt.pages.size(), ck.pages.size());
    for (size_t i = 0; i < ck.pages.size(); ++i)
        EXPECT_EQ(rt.pages[i].bytes, ck.pages[i].bytes);
    EXPECT_TRUE(ckpt::verifyId(rt));
    EXPECT_GT(c.storeBytesRead, 0u);
    std::filesystem::remove_all(dir);
}

TEST_F(CkptTest, DanglingStoreReferenceIsRejected)
{
    auto dirA = freshDir("onespec_test_store_a");
    auto dirB = freshDir("onespec_test_store_b");
    ckpt::CkptStore storeA(dirA.string());
    ckpt::CkptStore storeB(dirB.string());
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);
    storeA.save("ck", ck);

    // Same container bytes, wrong (empty) store: every reference
    // dangles and the load must fail loudly.
    std::vector<uint8_t> bytes;
    {
        ckpt::EncodeOptions opt;
        opt.store = &storeA;
        bytes = ckpt::encode(ck, opt);
    }
    try {
        (void)ckpt::decode(bytes, &storeB);
        FAIL() << "dangling store reference resolved without error";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("dangling store reference"),
                  std::string::npos)
            << e.what();
    }

    // No store at all is a distinct, equally hard error.
    EXPECT_THROW((void)ckpt::decode(bytes), ckpt::CkptError);
    std::filesystem::remove_all(dirA);
    std::filesystem::remove_all(dirB);
}

TEST_F(CkptTest, InspectReportsSectionsAndEncodings)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);

    ckpt::ContainerInfo v2 = ckpt::inspect(ckpt::encode(ck));
    EXPECT_EQ(v2.version, 2u);
    EXPECT_FALSE(v2.delta);
    EXPECT_EQ(v2.specName, "alpha64");
    EXPECT_EQ(v2.id, ck.id);
    EXPECT_EQ(v2.pageCount, ck.pages.size());
    EXPECT_FALSE(v2.pagesByRef);
    ASSERT_EQ(v2.sections.size(), 3u);
    EXPECT_EQ(v2.sections[0].name, "ARCH");
    EXPECT_EQ(v2.sections[1].name, "OS  ");
    EXPECT_EQ(v2.sections[2].name, "MEM ");
    // Page map + one stream per page, and compression must be real.
    EXPECT_GT(v2.codec.blocks(), ck.pages.size());
    EXPECT_LT(v2.codec.bytesEncoded, v2.codec.bytesRaw);

    ckpt::EncodeOptions v1opt;
    v1opt.version = ckpt::kFormatVersionV1;
    ckpt::ContainerInfo v1 = ckpt::inspect(ckpt::encode(ck, v1opt));
    EXPECT_EQ(v1.version, 1u);
    EXPECT_EQ(v1.pageCount, ck.pages.size());
    EXPECT_EQ(v1.codec.blocks(), 0u);

    // A store-backed container inspects without the store present.
    auto dir = freshDir("onespec_test_store_inspect");
    ckpt::CkptStore store(dir.string());
    ckpt::EncodeOptions refOpt;
    refOpt.store = &store;
    ckpt::ContainerInfo byref = ckpt::inspect(ckpt::encode(ck, refOpt));
    EXPECT_TRUE(byref.pagesByRef);
    EXPECT_EQ(byref.pageRefs.size(), ck.pages.size());
    std::filesystem::remove_all(dir);
}

TEST_F(CkptTest, StoreBackedSamplingPersistsEveryWindow)
{
    auto dir = freshDir("onespec_test_store_sampling");
    ckpt::CkptStore store(dir.string());

    CkptSamplingConfig ccfg;
    ccfg.sampling.windowInstrs = 500;
    ccfg.sampling.periodInstrs = 5'000;
    ccfg.sampling.independentWindows = true;
    ccfg.maxInstrs = 30'000;
    ccfg.detailedBuildset = "StepAllNo";
    ccfg.fastBuildset = kBuildset;
    ccfg.store = &store;
    ccfg.storePrefix = "w";
    SimFleet fleet(2);
    CkptSamplingResult par = parallel::runSampledCheckpointParallel(
        *spec_, *prog_, ccfg, fleet);
    for (const auto &err : par.jobErrors)
        ASSERT_TRUE(err.empty()) << err;
    ASSERT_GT(par.totalInstrs, 0u);
    ASSERT_EQ(par.storedNames.size(), par.checkpoints.size());

    // Every persisted window loads back as the exact checkpoint the run
    // kept in memory -- the store round trip preserves identity.
    for (size_t i = 0; i < par.storedNames.size(); ++i) {
        ckpt::Checkpoint rt = store.load(par.storedNames[i]);
        EXPECT_EQ(rt.id, par.checkpoints[i].id) << par.storedNames[i];
        EXPECT_TRUE(ckpt::verifyId(rt));
    }
    EXPECT_EQ(par.ckpt.storePagePuts,
              par.ckpt.storePageDedupHits + store.pageBlobCount());
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Restore semantics
// ---------------------------------------------------------------------

TEST_F(CkptTest, SpecMismatchIsRejectedNotLoaded)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);

    auto arm = loadIsa("arm32");
    SimContext actx(*arm);
    try {
        ckpt::restore(actx, ck);
        FAIL() << "alpha64 checkpoint restored into an arm32 context";
    } catch (const ckpt::CkptError &e) {
        // Diagnostic names both specs so the operator can see the clash.
        EXPECT_NE(std::string(e.what()).find("alpha64"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("arm32"), std::string::npos)
            << e.what();
    }
}

TEST_F(CkptTest, DeltaRequiresChainRestore)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint full = ckpt::capture(ctx);
    ASSERT_EQ(sim->run(5'000).status, RunStatus::Ok);
    ckpt::Checkpoint delta = ckpt::captureDelta(ctx, full);
    EXPECT_TRUE(delta.delta);
    EXPECT_EQ(delta.parentId, full.id);

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    EXPECT_THROW(ckpt::restore(fresh, delta), ckpt::CkptError);
    // A chain not rooted in a full checkpoint is equally invalid.
    EXPECT_THROW(ckpt::restoreChain(fresh, {&delta}), ckpt::CkptError);
}

TEST_F(CkptTest, BrokenChainLinkIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint full = ckpt::capture(ctx);
    ASSERT_EQ(sim->run(5'000).status, RunStatus::Ok);
    ckpt::Checkpoint delta = ckpt::captureDelta(ctx, full);

    // A different full checkpoint: same spec, different state/identity.
    SimContext ctx2(*spec_);
    auto sim2 = runTo(ctx2, 7'000);
    ASSERT_NE(sim2, nullptr);
    ckpt::Checkpoint wrongRoot = ckpt::capture(ctx2);
    ASSERT_NE(wrongRoot.id, full.id);

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    EXPECT_THROW(ckpt::restoreChain(fresh, {&wrongRoot, &delta}),
                 ckpt::CkptError);
}

TEST_F(CkptTest, ResumeAfterRestoreMatchesUninterruptedRun)
{
    // Reference: one uninterrupted run to completion.
    SimContext ref(*spec_);
    auto rsim = runTo(ref, 0);
    ASSERT_NE(rsim, nullptr);
    RunResult rr = rsim->run(~uint64_t{0});
    ASSERT_EQ(rr.status, RunStatus::Halted);

    // Checkpoint mid-run, restore into a fresh context, resume.
    SimContext mid(*spec_);
    auto msim = runTo(mid, 40'000);
    ASSERT_NE(msim, nullptr);
    ckpt::Checkpoint ck = ckpt::decode(ckpt::encode(ckpt::capture(mid)));

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    auto fsim = SimRegistry::instance().create(fresh, kBuildset);
    ASSERT_NE(fsim, nullptr);
    ckpt::restore(fresh, ck);
    fsim->onStateRestored();
    RunResult fr = fsim->run(~uint64_t{0});

    EXPECT_EQ(static_cast<int>(fr.status), static_cast<int>(rr.status));
    EXPECT_EQ(40'000u + fr.instrs, rr.instrs);
    EXPECT_EQ(fresh.instrsRetired(), ref.instrsRetired());
    EXPECT_EQ(fresh.os().output(), ref.os().output());
    EXPECT_EQ(fresh.os().output(), goldenOutput("fib", 25'000));
    EXPECT_TRUE(fresh.state() == ref.state())
        << "architectural state diverged after restore+resume";
}

TEST_F(CkptTest, DeltaChainRestoreMatchesUninterruptedRun)
{
    SimContext ref(*spec_);
    auto rsim = runTo(ref, 0);
    ASSERT_NE(rsim, nullptr);
    RunResult rr = rsim->run(~uint64_t{0});
    ASSERT_EQ(rr.status, RunStatus::Halted);

    // full@10k -> delta@20k -> delta@30k on one execution.
    SimContext mid(*spec_);
    auto msim = runTo(mid, 10'000);
    ASSERT_NE(msim, nullptr);
    ckpt::Checkpoint c0 = ckpt::capture(mid);
    ASSERT_EQ(msim->run(10'000).status, RunStatus::Ok);
    ckpt::Checkpoint c1 = ckpt::captureDelta(mid, c0);
    ASSERT_EQ(msim->run(10'000).status, RunStatus::Ok);
    ckpt::Checkpoint c2 = ckpt::captureDelta(mid, c1);

    // Deltas must be a strict subset of the full page set.
    EXPECT_GT(c0.pages.size(), 0u);
    EXPECT_LE(c1.pages.size(), c0.pages.size());
    EXPECT_LE(c2.pages.size(), c0.pages.size());

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    auto fsim = SimRegistry::instance().create(fresh, kBuildset);
    ASSERT_NE(fsim, nullptr);
    ckpt::restoreChain(fresh, {&c0, &c1, &c2});
    fsim->onStateRestored();
    EXPECT_EQ(fresh.instrsRetired(), 30'000u);
    RunResult fr = fsim->run(~uint64_t{0});

    EXPECT_EQ(static_cast<int>(fr.status), static_cast<int>(rr.status));
    EXPECT_EQ(30'000u + fr.instrs, rr.instrs);
    EXPECT_EQ(fresh.os().output(), ref.os().output());
    EXPECT_TRUE(fresh.state() == ref.state())
        << "architectural state diverged after chain restore";
}

TEST_F(CkptTest, RestoreIntoDirtyContextReplacesAllState)
{
    SimContext mid(*spec_);
    auto msim = runTo(mid, 30'000);
    ASSERT_NE(msim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(mid);

    // Victim context: a *different* kernel run to completion, leaving
    // its own pages, OS output, and retired count behind.
    SimContext dirty(*spec_);
    auto dsim = runTo(dirty, 0, *other_);
    ASSERT_NE(dsim, nullptr);
    ASSERT_EQ(dsim->run(~uint64_t{0}).status, RunStatus::Halted);
    ASSERT_FALSE(dirty.os().output().empty());

    // Restore the fib checkpoint over it and resume with a simulator
    // that had cached state from the crc32 run.
    dirty.load(*prog_);
    ckpt::restore(dirty, ck);
    dsim->onStateRestored();
    RunResult r = dsim->run(~uint64_t{0});
    EXPECT_EQ(static_cast<int>(r.status),
              static_cast<int>(RunStatus::Halted));
    EXPECT_EQ(dirty.os().output(), goldenOutput("fib", 25'000));
}

TEST_F(CkptTest, CountersTrackCaptureAndRestoreWork)
{
    ckpt::CkptCounters c;
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint full = ckpt::capture(ctx, &c);
    ASSERT_EQ(sim->run(10'000).status, RunStatus::Ok);
    ckpt::Checkpoint delta = ckpt::captureDelta(ctx, full, &c);
    std::vector<uint8_t> bytes = ckpt::encode(full, &c);

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    ckpt::restoreChain(fresh, {&full, &delta}, &c);

    EXPECT_EQ(c.fullCaptures, 1u);
    EXPECT_EQ(c.deltaCaptures, 1u);
    EXPECT_EQ(c.restores, 2u); // both chain links applied
    EXPECT_GE(c.pagesCaptured, full.pages.size());
    EXPECT_EQ(c.pagesRestored, full.pages.size() + delta.pages.size());
    EXPECT_EQ(c.bytesEncoded, bytes.size());

    // publish() lands everything under one registry group.
    stats::StatsRegistry reg;
    c.publish(reg.group("ckpt"));
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("full_captures"), std::string::npos);
}

// ---------------------------------------------------------------------
// Parallel restore on the fleet (tsan-labeled via CMake)
// ---------------------------------------------------------------------

TEST_F(CkptTest, FleetJobsRestoreChainsBitIdenticallyAtAnyWidth)
{
    SimContext mid(*spec_);
    auto msim = runTo(mid, 10'000);
    ASSERT_NE(msim, nullptr);
    ckpt::Checkpoint full = ckpt::capture(mid);
    ASSERT_EQ(msim->run(10'000).status, RunStatus::Ok);
    ckpt::Checkpoint delta = ckpt::captureDelta(mid, full);

    // Many identical jobs, each restoring the chain and running a fixed
    // slice: every result must agree, at every thread count.
    std::vector<FleetJob> jobs;
    for (int i = 0; i < 12; ++i) {
        FleetJob j;
        j.spec = spec_;
        j.program = prog_;
        j.buildset = kBuildset;
        j.maxInstrs = 5'000;
        j.name = "restore#" + std::to_string(i);
        j.restore = {&full, &delta};
        jobs.push_back(std::move(j));
    }

    SimFleet serial(1);
    FleetReport ref = serial.run(jobs);
    ASSERT_EQ(ref.results.size(), jobs.size());
    for (const auto &res : ref.results) {
        ASSERT_TRUE(res.error.empty()) << res.error;
        EXPECT_EQ(res.run.instrs, 5'000u);
        EXPECT_EQ(res.ckptCounters.restores, 2u);
        EXPECT_EQ(res.stateHash, ref.results[0].stateHash);
    }

    for (unsigned width : {2u, 4u}) {
        SimFleet fleet(width);
        FleetReport par = fleet.run(jobs);
        ASSERT_EQ(par.results.size(), ref.results.size());
        for (size_t j = 0; j < jobs.size(); ++j) {
            ASSERT_TRUE(par.results[j].error.empty())
                << par.results[j].error;
            EXPECT_EQ(par.results[j].stateHash, ref.results[j].stateHash)
                << jobs[j].name << " at " << width << " threads";
            EXPECT_EQ(par.results[j].run.instrs,
                      ref.results[j].run.instrs);
        }
        EXPECT_EQ(par.merged->toJson().dump(0),
                  ref.merged->toJson().dump(0));
    }
}

TEST_F(CkptTest, CkptParallelSamplingBitIdenticalToSerialSampling)
{
    // Serial reference: the independent-windows schedule the parallel
    // driver reproduces (cold pipeline per window).
    SamplingConfig scfg;
    scfg.windowInstrs = 500;
    scfg.periodInstrs = 5'000;
    scfg.independentWindows = true;
    const uint64_t maxInstrs = 60'000;

    SimContext ctx(*spec_);
    ctx.load(*prog_);
    auto det = SimRegistry::instance().create(ctx, "StepAllNo");
    auto fast = SimRegistry::instance().create(ctx, kBuildset);
    ASSERT_NE(det, nullptr);
    ASSERT_NE(fast, nullptr);
    SamplingStats serial =
        runSampled(*spec_, *det, *fast, scfg, maxInstrs);
    ASSERT_GT(serial.windows, 4u);

    auto dump = [](const SamplingStats &s) {
        stats::StatsRegistry reg;
        s.publish(reg.group("sampling"));
        std::ostringstream os;
        reg.dump(os);
        return os.str();
    };
    const std::string want = dump(serial);

    CkptSamplingConfig ccfg;
    ccfg.sampling = scfg;
    ccfg.maxInstrs = maxInstrs;
    ccfg.detailedBuildset = "StepAllNo";
    ccfg.fastBuildset = kBuildset;
    for (unsigned width : {1u, 2u, 4u}) {
        SimFleet fleet(width);
        CkptSamplingResult par = parallel::runSampledCheckpointParallel(
            *spec_, *prog_, ccfg, fleet);
        for (const auto &err : par.jobErrors)
            ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(par.stats.windows, serial.windows)
            << width << " threads";
        EXPECT_EQ(dump(par.stats), want)
            << "merged stats dump differs from serial at " << width
            << " threads";
        // One checkpoint per window: a full root, deltas after.
        ASSERT_EQ(par.checkpoints.size(), par.stats.windows);
        EXPECT_FALSE(par.checkpoints.front().delta);
        for (size_t i = 1; i < par.checkpoints.size(); ++i)
            EXPECT_TRUE(par.checkpoints[i].delta) << "window " << i;
    }
}

// ---------------------------------------------------------------------
// Store garbage collection (onespec-ckpt gc)
// ---------------------------------------------------------------------

TEST_F(CkptTest, GcDeletesOnlyUnreferencedBlobs)
{
    auto dir = freshDir("onespec_test_store_gc");
    ckpt::CkptStore store(dir.string());

    // Two checkpoints with mostly-different content: the second is taken
    // deeper into the run plus from a different program, so removing the
    // first leaves real orphan blobs behind.
    SimContext ctxA(*spec_);
    auto simA = runTo(ctxA, 10'000);
    ASSERT_NE(simA, nullptr);
    ckpt::Checkpoint ckA = ckpt::capture(ctxA);
    SimContext ctxB(*spec_);
    auto simB = runTo(ctxB, 400, *other_);
    ASSERT_NE(simB, nullptr);
    ckpt::Checkpoint ckB = ckpt::capture(ctxB);
    store.save("keep", ckB);
    store.save("drop", ckA);

    // Everything referenced: gc is a no-op however often it runs.
    ckpt::CkptStore::GcStats s0 = store.gc();
    EXPECT_EQ(s0.containers, 2u);
    EXPECT_EQ(s0.blobsDeleted, 0u);
    EXPECT_EQ(s0.bytesReclaimed, 0u);
    EXPECT_EQ(s0.danglingRefs, 0u);

    ASSERT_TRUE(store.removeCheckpoint("drop"));
    const uint64_t blobsBefore = store.pageBlobCount();
    const uint64_t bytesBefore = store.pageBlobBytes();

    // Dry run counts the garbage but deletes nothing.
    ckpt::CkptStore::GcStats dry = store.gc(/*dry_run=*/true);
    EXPECT_GT(dry.blobsDeleted, 0u);
    EXPECT_GT(dry.bytesReclaimed, 0u);
    EXPECT_EQ(store.pageBlobCount(), blobsBefore);
    EXPECT_EQ(store.pageBlobBytes(), bytesBefore);

    // The real sweep reclaims exactly what the dry run promised, and
    // the surviving checkpoint still loads bit-identically.
    ckpt::CkptStore::GcStats wet = store.gc();
    EXPECT_EQ(wet.blobsDeleted, dry.blobsDeleted);
    EXPECT_EQ(wet.bytesReclaimed, dry.bytesReclaimed);
    EXPECT_EQ(store.pageBlobCount(), blobsBefore - wet.blobsDeleted);
    EXPECT_EQ(store.pageBlobBytes(), bytesBefore - wet.bytesReclaimed);
    ckpt::Checkpoint rt = store.load("keep");
    EXPECT_EQ(rt.id, ckB.id);
    ASSERT_EQ(rt.pages.size(), ckB.pages.size());
    for (size_t i = 0; i < ckB.pages.size(); ++i)
        EXPECT_EQ(rt.pages[i].bytes, ckB.pages[i].bytes);
    std::filesystem::remove_all(dir);
}

TEST_F(CkptTest, GcCountsDanglingRefsWithoutDeleting)
{
    auto dir = freshDir("onespec_test_store_gc_dangle");
    ckpt::CkptStore store(dir.string());
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);
    store.save("ck", ck);

    // Fixture: delete one referenced blob behind the store's back, as a
    // crashed writer or an over-eager operator might.
    ASSERT_FALSE(ck.pages.empty());
    const auto &pg = ck.pages.front().bytes;
    std::string victim =
        store.pagePath(ckpt::fnv1a(pg.data(), pg.size()));
    ASSERT_TRUE(std::filesystem::remove(victim)) << victim;
    const uint64_t blobsBefore = store.pageBlobCount();

    // The sweep reports the damage precisely and deletes nothing that
    // is still referenced (there is no unreferenced garbage here).
    ckpt::CkptStore::GcStats s = store.gc();
    EXPECT_GE(s.danglingRefs, 1u);
    EXPECT_EQ(s.blobsDeleted, 0u);
    EXPECT_EQ(store.pageBlobCount(), blobsBefore);
    std::filesystem::remove_all(dir);
}

TEST_F(CkptTest, GcAbortsBeforeDeletingWhenAContainerIsDamaged)
{
    auto dir = freshDir("onespec_test_store_gc_damaged");
    ckpt::CkptStore store(dir.string());
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);
    store.save("good", ck);
    store.save("bad", ck);
    ASSERT_TRUE(store.removeCheckpoint("good")); // make real garbage

    // Flip one payload byte in the surviving container: its references
    // can no longer be trusted, so gc must refuse to delete anything.
    auto path = store.ckptPath("bad");
    auto bytes = [&] {
        std::ifstream in(path, std::ios::binary);
        return std::vector<char>(std::istreambuf_iterator<char>(in), {});
    }();
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] ^= 0x01;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    const uint64_t blobsBefore = store.pageBlobCount();
    EXPECT_THROW((void)store.gc(), ckpt::CkptError);
    EXPECT_EQ(store.pageBlobCount(), blobsBefore);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace onespec
