/**
 * @file
 * Checkpoint/restore subsystem tests: container round trips, hard
 * rejection of damaged/mismatched containers, delta-chain semantics,
 * resume-equals-uninterrupted determinism, and parallel restore on the
 * fleet (bit-identity at every thread count).  The fleet cases carry the
 * `tsan` ctest label; re-run them under -DONESPEC_SANITIZE=thread.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "parallel/ckpt_sampling.hpp"
#include "parallel/fleet.hpp"
#include "stats/stats.hpp"
#include "timing/sampling.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

namespace onespec {
namespace {

using parallel::CkptSamplingConfig;
using parallel::CkptSamplingResult;
using parallel::FleetJob;
using parallel::FleetReport;
using parallel::SimFleet;

constexpr const char *kBuildset = "BlockMinNo";

/** Shared expensive state: one spec + kernel per ISA under test. */
class CkptTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        spec_ = loadIsa("alpha64").release();
        auto b = makeBuilder(*spec_);
        prog_ = new Program(buildKernel(*b, "fib", 25'000));
        auto b2 = makeBuilder(*spec_);
        other_ = new Program(buildKernel(*b2, "crc32", 500));
    }

    static void
    TearDownTestSuite()
    {
        delete prog_;
        delete other_;
        delete spec_;
        prog_ = other_ = nullptr;
        spec_ = nullptr;
    }

    /** Fresh context + simulator, advanced @p instrs into the kernel. */
    static std::unique_ptr<FunctionalSimulator>
    runTo(SimContext &ctx, uint64_t instrs, const Program &prog = *prog_)
    {
        ctx.load(prog);
        auto sim = SimRegistry::instance().create(ctx, kBuildset);
        if (!sim)
            return nullptr;
        if (instrs) {
            RunResult r = sim->run(instrs);
            EXPECT_EQ(static_cast<int>(r.status),
                      static_cast<int>(RunStatus::Ok))
                << "kernel ended before the checkpoint point";
        }
        return sim;
    }

    static Spec *spec_;
    static Program *prog_;
    static Program *other_;
};

Spec *CkptTest::spec_ = nullptr;
Program *CkptTest::prog_ = nullptr;
Program *CkptTest::other_ = nullptr;

// ---------------------------------------------------------------------
// Container round trips and rejection of damaged containers
// ---------------------------------------------------------------------

TEST_F(CkptTest, EncodeDecodeRoundTripIsLossless)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 20'000);
    ASSERT_NE(sim, nullptr);

    ckpt::Checkpoint ck = ckpt::capture(ctx);
    std::vector<uint8_t> bytes = ckpt::encode(ck);
    ckpt::Checkpoint rt = ckpt::decode(bytes);

    EXPECT_EQ(rt.id, ck.id);
    EXPECT_EQ(rt.parentId, 0u);
    EXPECT_FALSE(rt.delta);
    EXPECT_EQ(rt.specFingerprint, ck.specFingerprint);
    EXPECT_EQ(rt.specName, "alpha64");
    EXPECT_EQ(rt.instrsRetired, 20'000u);
    EXPECT_EQ(rt.epochMark, ck.epochMark);
    EXPECT_EQ(rt.pc, ck.pc);
    EXPECT_EQ(rt.words, ck.words);
    EXPECT_EQ(rt.os.brk, ck.os.brk);
    EXPECT_EQ(rt.os.timeMs, ck.os.timeMs);
    EXPECT_EQ(rt.os.inputPos, ck.os.inputPos);
    EXPECT_EQ(rt.os.output, ck.os.output);
    EXPECT_EQ(rt.os.syscallCount, ck.os.syscallCount);
    ASSERT_EQ(rt.pages.size(), ck.pages.size());
    for (size_t i = 0; i < ck.pages.size(); ++i) {
        EXPECT_EQ(rt.pages[i].idx, ck.pages[i].idx);
        EXPECT_EQ(rt.pages[i].bytes, ck.pages[i].bytes);
    }
    EXPECT_TRUE(ckpt::verifyId(rt));
}

TEST_F(CkptTest, CorruptedPayloadByteIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    std::vector<uint8_t> bytes = ckpt::encode(ckpt::capture(ctx));

    // Flip one byte deep in the last section's payload: only the
    // per-section CRC can catch this.
    bytes[bytes.size() - 100] ^= 0x40;
    try {
        (void)ckpt::decode(bytes);
        FAIL() << "corrupted container decoded without error";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("CRC mismatch"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(CkptTest, TruncatedContainerIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    std::vector<uint8_t> bytes = ckpt::encode(ckpt::capture(ctx));

    // Every truncation length must throw, never crash or succeed.
    for (size_t keep : {size_t{0}, size_t{4}, size_t{7}, size_t{64},
                        bytes.size() / 2, bytes.size() - 1})
        EXPECT_THROW((void)ckpt::decode(std::vector<uint8_t>(
                         bytes.begin(), bytes.begin() + keep)),
                     ckpt::CkptError)
            << "kept " << keep << " bytes";
}

TEST_F(CkptTest, UnknownFormatVersionIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    std::vector<uint8_t> bytes = ckpt::encode(ckpt::capture(ctx));

    // Version field sits right after the 8-byte magic (little-endian).
    bytes[8] = 0x7f;
    try {
        (void)ckpt::decode(bytes);
        FAIL() << "future-version container decoded without error";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "unsupported checkpoint format version"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(CkptTest, BadMagicIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    std::vector<uint8_t> bytes = ckpt::encode(ckpt::capture(ctx));
    bytes[0] ^= 0xff;
    EXPECT_THROW((void)ckpt::decode(bytes), ckpt::CkptError);
}

TEST_F(CkptTest, VerifyIdDetectsHeaderContentMismatch)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);
    EXPECT_TRUE(ckpt::verifyId(ck));
    ck.words[0] ^= 1; // state no longer matches the recorded identity
    EXPECT_FALSE(ckpt::verifyId(ck));
}

// ---------------------------------------------------------------------
// Restore semantics
// ---------------------------------------------------------------------

TEST_F(CkptTest, SpecMismatchIsRejectedNotLoaded)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(ctx);

    auto arm = loadIsa("arm32");
    SimContext actx(*arm);
    try {
        ckpt::restore(actx, ck);
        FAIL() << "alpha64 checkpoint restored into an arm32 context";
    } catch (const ckpt::CkptError &e) {
        // Diagnostic names both specs so the operator can see the clash.
        EXPECT_NE(std::string(e.what()).find("alpha64"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("arm32"), std::string::npos)
            << e.what();
    }
}

TEST_F(CkptTest, DeltaRequiresChainRestore)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint full = ckpt::capture(ctx);
    ASSERT_EQ(sim->run(5'000).status, RunStatus::Ok);
    ckpt::Checkpoint delta = ckpt::captureDelta(ctx, full);
    EXPECT_TRUE(delta.delta);
    EXPECT_EQ(delta.parentId, full.id);

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    EXPECT_THROW(ckpt::restore(fresh, delta), ckpt::CkptError);
    // A chain not rooted in a full checkpoint is equally invalid.
    EXPECT_THROW(ckpt::restoreChain(fresh, {&delta}), ckpt::CkptError);
}

TEST_F(CkptTest, BrokenChainLinkIsRejected)
{
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 5'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint full = ckpt::capture(ctx);
    ASSERT_EQ(sim->run(5'000).status, RunStatus::Ok);
    ckpt::Checkpoint delta = ckpt::captureDelta(ctx, full);

    // A different full checkpoint: same spec, different state/identity.
    SimContext ctx2(*spec_);
    auto sim2 = runTo(ctx2, 7'000);
    ASSERT_NE(sim2, nullptr);
    ckpt::Checkpoint wrongRoot = ckpt::capture(ctx2);
    ASSERT_NE(wrongRoot.id, full.id);

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    EXPECT_THROW(ckpt::restoreChain(fresh, {&wrongRoot, &delta}),
                 ckpt::CkptError);
}

TEST_F(CkptTest, ResumeAfterRestoreMatchesUninterruptedRun)
{
    // Reference: one uninterrupted run to completion.
    SimContext ref(*spec_);
    auto rsim = runTo(ref, 0);
    ASSERT_NE(rsim, nullptr);
    RunResult rr = rsim->run(~uint64_t{0});
    ASSERT_EQ(rr.status, RunStatus::Halted);

    // Checkpoint mid-run, restore into a fresh context, resume.
    SimContext mid(*spec_);
    auto msim = runTo(mid, 40'000);
    ASSERT_NE(msim, nullptr);
    ckpt::Checkpoint ck = ckpt::decode(ckpt::encode(ckpt::capture(mid)));

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    auto fsim = SimRegistry::instance().create(fresh, kBuildset);
    ASSERT_NE(fsim, nullptr);
    ckpt::restore(fresh, ck);
    fsim->onStateRestored();
    RunResult fr = fsim->run(~uint64_t{0});

    EXPECT_EQ(static_cast<int>(fr.status), static_cast<int>(rr.status));
    EXPECT_EQ(40'000u + fr.instrs, rr.instrs);
    EXPECT_EQ(fresh.instrsRetired(), ref.instrsRetired());
    EXPECT_EQ(fresh.os().output(), ref.os().output());
    EXPECT_EQ(fresh.os().output(), goldenOutput("fib", 25'000));
    EXPECT_TRUE(fresh.state() == ref.state())
        << "architectural state diverged after restore+resume";
}

TEST_F(CkptTest, DeltaChainRestoreMatchesUninterruptedRun)
{
    SimContext ref(*spec_);
    auto rsim = runTo(ref, 0);
    ASSERT_NE(rsim, nullptr);
    RunResult rr = rsim->run(~uint64_t{0});
    ASSERT_EQ(rr.status, RunStatus::Halted);

    // full@10k -> delta@20k -> delta@30k on one execution.
    SimContext mid(*spec_);
    auto msim = runTo(mid, 10'000);
    ASSERT_NE(msim, nullptr);
    ckpt::Checkpoint c0 = ckpt::capture(mid);
    ASSERT_EQ(msim->run(10'000).status, RunStatus::Ok);
    ckpt::Checkpoint c1 = ckpt::captureDelta(mid, c0);
    ASSERT_EQ(msim->run(10'000).status, RunStatus::Ok);
    ckpt::Checkpoint c2 = ckpt::captureDelta(mid, c1);

    // Deltas must be a strict subset of the full page set.
    EXPECT_GT(c0.pages.size(), 0u);
    EXPECT_LE(c1.pages.size(), c0.pages.size());
    EXPECT_LE(c2.pages.size(), c0.pages.size());

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    auto fsim = SimRegistry::instance().create(fresh, kBuildset);
    ASSERT_NE(fsim, nullptr);
    ckpt::restoreChain(fresh, {&c0, &c1, &c2});
    fsim->onStateRestored();
    EXPECT_EQ(fresh.instrsRetired(), 30'000u);
    RunResult fr = fsim->run(~uint64_t{0});

    EXPECT_EQ(static_cast<int>(fr.status), static_cast<int>(rr.status));
    EXPECT_EQ(30'000u + fr.instrs, rr.instrs);
    EXPECT_EQ(fresh.os().output(), ref.os().output());
    EXPECT_TRUE(fresh.state() == ref.state())
        << "architectural state diverged after chain restore";
}

TEST_F(CkptTest, RestoreIntoDirtyContextReplacesAllState)
{
    SimContext mid(*spec_);
    auto msim = runTo(mid, 30'000);
    ASSERT_NE(msim, nullptr);
    ckpt::Checkpoint ck = ckpt::capture(mid);

    // Victim context: a *different* kernel run to completion, leaving
    // its own pages, OS output, and retired count behind.
    SimContext dirty(*spec_);
    auto dsim = runTo(dirty, 0, *other_);
    ASSERT_NE(dsim, nullptr);
    ASSERT_EQ(dsim->run(~uint64_t{0}).status, RunStatus::Halted);
    ASSERT_FALSE(dirty.os().output().empty());

    // Restore the fib checkpoint over it and resume with a simulator
    // that had cached state from the crc32 run.
    dirty.load(*prog_);
    ckpt::restore(dirty, ck);
    dsim->onStateRestored();
    RunResult r = dsim->run(~uint64_t{0});
    EXPECT_EQ(static_cast<int>(r.status),
              static_cast<int>(RunStatus::Halted));
    EXPECT_EQ(dirty.os().output(), goldenOutput("fib", 25'000));
}

TEST_F(CkptTest, CountersTrackCaptureAndRestoreWork)
{
    ckpt::CkptCounters c;
    SimContext ctx(*spec_);
    auto sim = runTo(ctx, 10'000);
    ASSERT_NE(sim, nullptr);
    ckpt::Checkpoint full = ckpt::capture(ctx, &c);
    ASSERT_EQ(sim->run(10'000).status, RunStatus::Ok);
    ckpt::Checkpoint delta = ckpt::captureDelta(ctx, full, &c);
    std::vector<uint8_t> bytes = ckpt::encode(full, &c);

    SimContext fresh(*spec_);
    fresh.load(*prog_);
    ckpt::restoreChain(fresh, {&full, &delta}, &c);

    EXPECT_EQ(c.fullCaptures, 1u);
    EXPECT_EQ(c.deltaCaptures, 1u);
    EXPECT_EQ(c.restores, 2u); // both chain links applied
    EXPECT_GE(c.pagesCaptured, full.pages.size());
    EXPECT_EQ(c.pagesRestored, full.pages.size() + delta.pages.size());
    EXPECT_EQ(c.bytesEncoded, bytes.size());

    // publish() lands everything under one registry group.
    stats::StatsRegistry reg;
    c.publish(reg.group("ckpt"));
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("full_captures"), std::string::npos);
}

// ---------------------------------------------------------------------
// Parallel restore on the fleet (tsan-labeled via CMake)
// ---------------------------------------------------------------------

TEST_F(CkptTest, FleetJobsRestoreChainsBitIdenticallyAtAnyWidth)
{
    SimContext mid(*spec_);
    auto msim = runTo(mid, 10'000);
    ASSERT_NE(msim, nullptr);
    ckpt::Checkpoint full = ckpt::capture(mid);
    ASSERT_EQ(msim->run(10'000).status, RunStatus::Ok);
    ckpt::Checkpoint delta = ckpt::captureDelta(mid, full);

    // Many identical jobs, each restoring the chain and running a fixed
    // slice: every result must agree, at every thread count.
    std::vector<FleetJob> jobs;
    for (int i = 0; i < 12; ++i) {
        FleetJob j;
        j.spec = spec_;
        j.program = prog_;
        j.buildset = kBuildset;
        j.maxInstrs = 5'000;
        j.name = "restore#" + std::to_string(i);
        j.restore = {&full, &delta};
        jobs.push_back(std::move(j));
    }

    SimFleet serial(1);
    FleetReport ref = serial.run(jobs);
    ASSERT_EQ(ref.results.size(), jobs.size());
    for (const auto &res : ref.results) {
        ASSERT_TRUE(res.error.empty()) << res.error;
        EXPECT_EQ(res.run.instrs, 5'000u);
        EXPECT_EQ(res.ckptCounters.restores, 2u);
        EXPECT_EQ(res.stateHash, ref.results[0].stateHash);
    }

    for (unsigned width : {2u, 4u}) {
        SimFleet fleet(width);
        FleetReport par = fleet.run(jobs);
        ASSERT_EQ(par.results.size(), ref.results.size());
        for (size_t j = 0; j < jobs.size(); ++j) {
            ASSERT_TRUE(par.results[j].error.empty())
                << par.results[j].error;
            EXPECT_EQ(par.results[j].stateHash, ref.results[j].stateHash)
                << jobs[j].name << " at " << width << " threads";
            EXPECT_EQ(par.results[j].run.instrs,
                      ref.results[j].run.instrs);
        }
        EXPECT_EQ(par.merged->toJson().dump(0),
                  ref.merged->toJson().dump(0));
    }
}

TEST_F(CkptTest, CkptParallelSamplingBitIdenticalToSerialSampling)
{
    // Serial reference: the independent-windows schedule the parallel
    // driver reproduces (cold pipeline per window).
    SamplingConfig scfg;
    scfg.windowInstrs = 500;
    scfg.periodInstrs = 5'000;
    scfg.independentWindows = true;
    const uint64_t maxInstrs = 60'000;

    SimContext ctx(*spec_);
    ctx.load(*prog_);
    auto det = SimRegistry::instance().create(ctx, "StepAllNo");
    auto fast = SimRegistry::instance().create(ctx, kBuildset);
    ASSERT_NE(det, nullptr);
    ASSERT_NE(fast, nullptr);
    SamplingStats serial =
        runSampled(*spec_, *det, *fast, scfg, maxInstrs);
    ASSERT_GT(serial.windows, 4u);

    auto dump = [](const SamplingStats &s) {
        stats::StatsRegistry reg;
        s.publish(reg.group("sampling"));
        std::ostringstream os;
        reg.dump(os);
        return os.str();
    };
    const std::string want = dump(serial);

    CkptSamplingConfig ccfg;
    ccfg.sampling = scfg;
    ccfg.maxInstrs = maxInstrs;
    ccfg.detailedBuildset = "StepAllNo";
    ccfg.fastBuildset = kBuildset;
    for (unsigned width : {1u, 2u, 4u}) {
        SimFleet fleet(width);
        CkptSamplingResult par = parallel::runSampledCheckpointParallel(
            *spec_, *prog_, ccfg, fleet);
        for (const auto &err : par.jobErrors)
            ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(par.stats.windows, serial.windows)
            << width << " threads";
        EXPECT_EQ(dump(par.stats), want)
            << "merged stats dump differs from serial at " << width
            << " threads";
        // One checkpoint per window: a full root, deltas after.
        ASSERT_EQ(par.checkpoints.size(), par.stats.windows);
        EXPECT_FALSE(par.checkpoints.front().delta);
        for (size_t i = 1; i < par.checkpoints.size(); ++i)
            EXPECT_TRUE(par.checkpoints[i].delta) << "window " << i;
    }
}

} // namespace
} // namespace onespec
