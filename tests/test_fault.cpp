/**
 * @file
 * Failure containment and fault injection: the SimError taxonomy, the
 * runaway-action-loop guard, guest-image validation, the deterministic
 * FaultInjector, and SimFleet's quarantine/watchdog/retry policy.  The
 * central claim under test is the containment contract of
 * docs/ROBUSTNESS.md: bad *input* faults exactly the job that supplied
 * it, never a sibling job and never the process.  Fleet cases carry the
 * `tsan` label via tests/CMakeLists.txt.
 */

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "fault/fault.hpp"
#include "parallel/fleet.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "support/sim_error.hpp"
#include "testutil.hpp"

namespace onespec {
namespace {

using fault::FaultEvent;
using fault::FaultInjector;
using fault::FaultOp;
using fault::FaultPlan;
using parallel::FleetJob;
using parallel::FleetPolicy;
using parallel::FleetReport;
using parallel::SimFleet;

// ---------------------------------------------------------------------
// Taxonomy
// ---------------------------------------------------------------------

TEST(SimErrorTaxonomy, KindsContextAndMessageFormat)
{
    GuestError g("loader", "bad image");
    EXPECT_EQ(g.kind(), ErrorKind::Guest);
    EXPECT_EQ(g.context(), "loader");
    EXPECT_STREQ(g.what(), "[loader] bad image");

    SpecError s("adl", "no such buildset");
    EXPECT_EQ(s.kind(), ErrorKind::Spec);

    ResourceError r("loader", "cannot open");
    EXPECT_EQ(r.kind(), ErrorKind::Resource);
}

TEST(SimErrorTaxonomy, DeadlineErrorIsRetryableResourceClass)
{
    DeadlineError d("job ran past its deadline", 123);
    EXPECT_EQ(d.kind(), ErrorKind::Resource);
    EXPECT_EQ(d.context(), "watchdog");
    EXPECT_EQ(d.elapsedNs(), 123u);
    // The fleet's retry filter catches by class, so the subclass
    // relationship is load-bearing.
    try {
        throw DeadlineError("x", 1);
    } catch (const ResourceError &) {
    } catch (...) {
        FAIL() << "DeadlineError must be catchable as ResourceError";
    }
}

TEST(SimErrorTaxonomy, CkptErrorIsGuestClass)
{
    try {
        throw ckpt::CkptError("section CRC mismatch");
    } catch (const GuestError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Guest);
        EXPECT_EQ(e.context(), "ckpt");
    } catch (...) {
        FAIL() << "CkptError must be catchable as GuestError";
    }
}

TEST(SimErrorTaxonomy, KindNamesAreStable)
{
    EXPECT_STREQ(errorKindName(ErrorKind::None), "none");
    EXPECT_STREQ(errorKindName(ErrorKind::Guest), "guest");
    EXPECT_STREQ(errorKindName(ErrorKind::Spec), "spec");
    EXPECT_STREQ(errorKindName(ErrorKind::Resource), "resource");
    EXPECT_STREQ(errorKindName(ErrorKind::Internal), "internal");
}

// ---------------------------------------------------------------------
// Mini-ISA scaffolding
// ---------------------------------------------------------------------

/** kMiniIsa plus one deliberately divergent instruction: `spin`'s while
 *  loop never advances, so only the action loop guard can stop it. */
std::string
spinIsaText()
{
    std::string text = test::kMiniIsa;
    const std::string anchor = "instr hlt";
    const std::string spin = R"(instr spin : RI match op == 20 {
    action execute {
        u64 i = 1;
        while (i != 0) { i = i | 1; }
    }
}

)";
    size_t pos = text.find(anchor);
    EXPECT_NE(pos, std::string::npos);
    text.insert(pos, spin);
    return text;
}

/** Assemble raw mini-ISA words at base 0x1000 (little endian). */
Program
miniProgram(const std::vector<uint32_t> &words, const char *name = "t")
{
    Program p;
    p.name = name;
    p.entry = 0x1000;
    Segment seg;
    seg.base = 0x1000;
    for (uint32_t w : words)
        for (int i = 0; i < 4; ++i)
            seg.bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    p.segments.push_back(std::move(seg));
    return p;
}

uint32_t
li(unsigned ra, uint16_t imm)
{
    return (8u << 26) | (ra << 21) | imm;
}

uint32_t
add(unsigned ra, unsigned rb, unsigned rc)
{
    return (1u << 26) | (ra << 21) | (rb << 16) | (rc << 11);
}

uint32_t
br(int16_t imm)
{
    return (12u << 26) | static_cast<uint16_t>(imm);
}

constexpr uint32_t kSysWord = 62u << 26;
constexpr uint32_t kHltWord = 63u << 26;
constexpr uint32_t kSpinWord = 20u << 26;

/** A short healthy program: some arithmetic, then halt. */
Program
healthyProgram(const char *name = "healthy")
{
    return miniProgram({li(0, 7), li(1, 35), add(0, 1, 2), add(2, 2, 3),
                        add(3, 3, 4), kHltWord},
                       name);
}

// ---------------------------------------------------------------------
// Containment at the simulator level
// ---------------------------------------------------------------------

TEST(Containment, RunawayActionLoopRaisesGuestErrorNotAbort)
{
    auto spec = test::makeSpec(spinIsaText());
    SimContext ctx(*spec);
    ctx.load(miniProgram({kSpinWord, kHltWord}, "spin"));
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    try {
        sim->run(10);
        FAIL() << "divergent while loop was not contained";
    } catch (const GuestError &e) {
        EXPECT_EQ(e.context(), "action");
        EXPECT_NE(std::string(e.what()).find("spin"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("runaway"), std::string::npos)
            << e.what();
    }
}

TEST(Containment, MalformedImageIsRejectedAtLoad)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    Program p = healthyProgram("bad-entry");
    p.entry = uint64_t{1} << 60; // far past Memory::kAddrLimit
    EXPECT_THROW(ctx.load(p), GuestError);

    SimContext ctx2(*spec);
    Program q = healthyProgram("bad-segment");
    q.segments[0].base = Memory::kAddrLimit - 2;
    EXPECT_THROW(ctx2.load(q), GuestError);
}

TEST(Containment, UnknownBuildsetIsSpecError)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    ctx.load(healthyProgram());
    EXPECT_THROW(makeInterpSimulator(ctx, "NoSuchBuildset"), SpecError);
}

// ---------------------------------------------------------------------
// FaultPlan / FaultInjector
// ---------------------------------------------------------------------

TEST(FaultPlanTest, RandomIsDeterministicInSeed)
{
    const std::vector<FaultOp> menu = {FaultOp::MemReadBitFlip,
                                       FaultOp::SyscallFail,
                                       FaultOp::PcBitFlip};
    FaultPlan a = FaultPlan::random(42, 1000, menu, 8);
    FaultPlan b = FaultPlan::random(42, 1000, menu, 8);
    ASSERT_EQ(a.events.size(), 8u);
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].op, b.events[i].op);
        EXPECT_EQ(a.events[i].trigger, b.events[i].trigger);
        EXPECT_EQ(a.events[i].target, b.events[i].target);
        EXPECT_EQ(a.events[i].bit, b.events[i].bit);
        EXPECT_GE(a.events[i].trigger, 1u);
        EXPECT_LE(a.events[i].trigger, 1000u);
    }
    // A different seed must produce a different schedule (overwhelmingly
    // likely over 8 events; a collision would mean mix() is broken).
    FaultPlan c = FaultPlan::random(43, 1000, menu, 8);
    bool differs = false;
    for (size_t i = 0; i < a.events.size(); ++i)
        differs |= a.events[i].trigger != c.events[i].trigger;
    EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, ReadBitFlipFiresAtExactOrdinal)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    ctx.load(healthyProgram());

    FaultPlan plan;
    plan.events.push_back({FaultOp::MemReadBitFlip, /*trigger=*/2,
                           /*target=*/0, /*bit=*/5, false});
    FaultInjector inj(plan);
    inj.attach(ctx);

    FaultKind f = FaultKind::None;
    EXPECT_EQ(ctx.mem().read(0x9000, 8, f), 0u);          // read #1: clean
    EXPECT_EQ(ctx.mem().read(0x9000, 8, f), uint64_t{1} << 5); // #2: flipped
    EXPECT_EQ(ctx.mem().read(0x9000, 8, f), 0u);          // #3: clean again
    EXPECT_EQ(f, FaultKind::None);
    EXPECT_EQ(inj.firedCount(), 1u);
}

TEST(FaultInjectorTest, AccessFaultRaisesBadMemory)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    ctx.load(healthyProgram());

    FaultPlan plan;
    plan.events.push_back({FaultOp::MemAccessFault, 1, 0, 0, false});
    FaultInjector inj(plan);
    inj.attach(ctx);

    FaultKind f = FaultKind::None;
    (void)ctx.mem().read(0x9000, 8, f);
    EXPECT_EQ(f, FaultKind::BadMemory);
    EXPECT_EQ(inj.firedCount(), 1u);
}

TEST(FaultInjectorTest, SyscallFailForcesErrorReturn)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    ctx.load(healthyProgram());

    FaultPlan plan;
    plan.events.push_back({FaultOp::SyscallFail, 1, 0, 0, false});
    FaultInjector inj(plan);
    inj.attach(ctx);

    ctx.state().writeReg(0, 0, kSysTimeMs);
    ctx.os().doSyscall();
    EXPECT_EQ(ctx.state().readReg(0, 0), static_cast<uint64_t>(-1));
    EXPECT_EQ(inj.firedCount(), 1u);

    // The next syscall is past the plan and behaves normally.
    ctx.state().writeReg(0, 0, kSysTimeMs);
    ctx.os().doSyscall();
    EXPECT_EQ(ctx.state().readReg(0, 0), 0u);
}

TEST(FaultInjectorTest, DetachRestoresCleanHooks)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    ctx.load(healthyProgram());
    {
        FaultPlan plan;
        plan.events.push_back({FaultOp::MemReadBitFlip, 1, 0, 0, false});
        FaultInjector inj(plan);
        inj.attach(ctx);
    } // destructor detaches
    EXPECT_EQ(ctx.mem().faultHook(), nullptr);
    FaultKind f = FaultKind::None;
    EXPECT_EQ(ctx.mem().read(0x9000, 8, f), 0u);
}

TEST(FaultInjectorTest, PcBitFlipMakesNextFetchFault)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    ctx.load(healthyProgram());
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    ASSERT_EQ(sim->run(2).status, RunStatus::Ok);

    FaultPlan plan;
    plan.events.push_back({FaultOp::PcBitFlip, /*trigger=*/1, 0, 3, false});
    FaultInjector inj(plan);
    inj.attach(ctx);
    EXPECT_EQ(inj.nextStateTrigger(), 1u);
    ASSERT_TRUE(inj.applyStateFaults(ctx));
    EXPECT_GE(ctx.state().pc(), Memory::kAddrLimit);
    sim->onStateRestored();
    EXPECT_EQ(sim->run(10).status, RunStatus::Fault);
}

TEST(FaultInjectorTest, ContainerCorruptionIsAlwaysCaughtByDecode)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    ctx.load(healthyProgram());
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    ASSERT_EQ(sim->run(3).status, RunStatus::Ok);
    const std::vector<uint8_t> image = ckpt::encode(ckpt::capture(ctx));
    ASSERT_EQ(ckpt::decode(image).instrsRetired, 3u); // sanity: intact

    for (unsigned seed = 0; seed < 16; ++seed) {
        FaultPlan plan = FaultPlan::random(
            seed, image.size(),
            {FaultOp::CkptBitFlip, FaultOp::CkptTruncate}, 1);
        FaultInjector inj(plan);
        std::vector<uint8_t> damaged = image;
        ASSERT_TRUE(inj.corruptContainer(damaged)) << "seed " << seed;
        EXPECT_THROW(ckpt::decode(damaged), ckpt::CkptError)
            << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// SimFleet: quarantine, determinism, watchdog, retry
// ---------------------------------------------------------------------

/** The ISSUE acceptance scenario: healthy jobs plus one malformed
 *  image, one divergent action loop, and one bit-flipped checkpoint
 *  restore, in a single batch. */
class FleetContainmentTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        spec_ = test::makeMiniSpec();
        spinSpec_ = test::makeSpec(spinIsaText());
        healthy_ = healthyProgram();
        badEntry_ = healthyProgram("malformed");
        badEntry_.entry = uint64_t{1} << 60;
        spinProg_ = miniProgram({kSpinWord, kHltWord}, "divergent");

        // A valid checkpoint image, then one with a flipped bit.
        SimContext ctx(*spec_);
        ctx.load(healthy_);
        auto sim = makeInterpSimulator(ctx, "OneAllNo");
        EXPECT_EQ(sim->run(3).status, RunStatus::Ok);
        image_ = ckpt::encode(ckpt::capture(ctx));
        damaged_ = image_;
        damaged_[damaged_.size() / 2] ^= 0x10;
    }

    FleetJob
    interpJob(const Spec &spec, const Program &prog, const char *name)
    {
        FleetJob j;
        j.spec = &spec;
        j.program = &prog;
        j.buildset = "OneAllNo";
        j.useInterp = true;
        j.name = name;
        return j;
    }

    std::vector<FleetJob>
    acceptanceJobs()
    {
        std::vector<FleetJob> jobs;
        jobs.push_back(interpJob(*spec_, healthy_, "healthy0"));
        jobs.push_back(interpJob(*spec_, badEntry_, "malformed"));
        jobs.push_back(interpJob(*spec_, healthy_, "healthy1"));
        jobs.push_back(interpJob(*spinSpec_, spinProg_, "divergent"));
        FleetJob ck = interpJob(*spec_, healthy_, "bad-ckpt");
        ck.restoreImages.push_back(&damaged_);
        jobs.push_back(std::move(ck));
        jobs.push_back(interpJob(*spec_, healthy_, "healthy2"));
        return jobs;
    }

    std::unique_ptr<Spec> spec_, spinSpec_;
    Program healthy_, badEntry_, spinProg_;
    std::vector<uint8_t> image_, damaged_;
};

TEST_F(FleetContainmentTest, BadJobsQuarantineHealthyJobsComplete)
{
    std::vector<FleetJob> jobs = acceptanceJobs();
    SimFleet fleet(4);
    FleetReport r = fleet.run(jobs);
    ASSERT_EQ(r.results.size(), jobs.size());

    EXPECT_EQ(r.quarantinedCount(), 3u);
    for (size_t i : {size_t{0}, size_t{2}, size_t{5}}) {
        EXPECT_FALSE(r.results[i].quarantined) << r.results[i].error;
        EXPECT_EQ(r.results[i].run.status, RunStatus::Halted)
            << jobs[i].name;
        EXPECT_EQ(r.results[i].attempts, 1u);
    }
    for (size_t i : {size_t{1}, size_t{3}, size_t{4}}) {
        EXPECT_TRUE(r.results[i].quarantined) << jobs[i].name;
        EXPECT_EQ(r.results[i].errorKind, ErrorKind::Guest)
            << jobs[i].name;
        EXPECT_FALSE(r.results[i].error.empty()) << jobs[i].name;
    }
    // Each record names its failing component.
    EXPECT_NE(r.results[1].error.find("[loader]"), std::string::npos)
        << r.results[1].error;
    EXPECT_NE(r.results[3].error.find("[action]"), std::string::npos)
        << r.results[3].error;
    EXPECT_NE(r.results[4].error.find("[ckpt]"), std::string::npos)
        << r.results[4].error;

    // Batch health counters land in the merged registry.
    auto counter = [&](const char *name) {
        auto *s = r.merged->resolve(std::string("fleet.health.") + name);
        EXPECT_NE(s, nullptr) << name;
        return s ? static_cast<stats::Counter *>(s)->value() : 0;
    };
    EXPECT_EQ(counter("jobs"), jobs.size());
    EXPECT_EQ(counter("quarantined"), 3u);
    EXPECT_EQ(counter("errors_guest"), 3u);
    EXPECT_EQ(counter("errors_spec"), 0u);
    EXPECT_EQ(counter("skipped"), 0u);
}

TEST_F(FleetContainmentTest, MergedStatsBitIdenticalAcrossThreadCounts)
{
    std::vector<FleetJob> jobs = acceptanceJobs();
    std::string refDump;
    for (unsigned threads : {1u, 2u, 4u}) {
        SimFleet fleet(threads);
        FleetReport r = fleet.run(jobs);
        EXPECT_EQ(r.quarantinedCount(), 3u) << threads << " threads";
        std::string dump = r.merged->toJson().dump(2);
        if (refDump.empty())
            refDump = dump;
        else
            EXPECT_EQ(dump, refDump) << threads << " threads";
    }
}

TEST_F(FleetContainmentTest, ValidCheckpointImageRestoresInJob)
{
    // Control for the bad-ckpt case: the same image undamaged restores
    // and the job resumes to a clean halt.
    FleetJob j = interpJob(*spec_, healthy_, "good-ckpt");
    j.restoreImages.push_back(&image_);
    SimFleet fleet(1);
    FleetReport r = fleet.run({j});
    ASSERT_FALSE(r.results[0].quarantined) << r.results[0].error;
    EXPECT_EQ(r.results[0].run.status, RunStatus::Halted);
}

TEST_F(FleetContainmentTest, WatchdogDeadlineQuarantinesRunawayGuest)
{
    // `br -1` branches to itself: legal guest code that never halts and
    // never trips the action-loop guard, so only the watchdog can end it.
    Program loop = miniProgram({br(-1)}, "infinite");
    std::vector<FleetJob> jobs;
    jobs.push_back(interpJob(*spec_, healthy_, "healthy"));
    jobs.push_back(interpJob(*spec_, loop, "infinite"));

    FleetPolicy pol;
    pol.deadlineNs = 20'000'000;        // 20 ms
    pol.watchdogChunk = uint64_t{1} << 14;
    SimFleet fleet(2);
    FleetReport r = fleet.run(jobs, pol);

    EXPECT_FALSE(r.results[0].quarantined) << r.results[0].error;
    EXPECT_EQ(r.results[0].run.status, RunStatus::Halted);

    EXPECT_TRUE(r.results[1].quarantined);
    EXPECT_TRUE(r.results[1].deadlineHit);
    EXPECT_EQ(r.results[1].errorKind, ErrorKind::Resource);
    EXPECT_NE(r.results[1].error.find("[watchdog]"), std::string::npos)
        << r.results[1].error;

    auto *s = r.merged->resolve("fleet.health.deadline_exceeded");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(static_cast<stats::Counter *>(s)->value(), 1u);
}

TEST_F(FleetContainmentTest, ResourceErrorsRetryWithBackoff)
{
    std::atomic<int> calls{0};
    FleetJob j = interpJob(*spec_, healthy_, "flaky");
    j.body = [&](SimContext &, FunctionalSimulator &sim,
                 parallel::FleetResult &out, stats::StatsRegistry &) {
        if (calls.fetch_add(1) == 0)
            throw ResourceError("test", "transient host hiccup");
        out.run = sim.run(~uint64_t{0});
    };

    FleetPolicy pol;
    pol.maxAttempts = 3;
    pol.backoffBaseNs = 1000; // keep the test fast
    SimFleet fleet(1);
    FleetReport r = fleet.run({j}, pol);

    EXPECT_FALSE(r.results[0].quarantined) << r.results[0].error;
    EXPECT_EQ(r.results[0].attempts, 2u);
    EXPECT_EQ(r.results[0].run.status, RunStatus::Halted);
    EXPECT_EQ(calls.load(), 2);

    auto *s = r.merged->resolve("fleet.health.retries");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(static_cast<stats::Counter *>(s)->value(), 1u);
}

TEST_F(FleetContainmentTest, GuestErrorsAreNeverRetried)
{
    std::atomic<int> calls{0};
    FleetJob j = interpJob(*spec_, healthy_, "deterministic-failure");
    j.body = [&](SimContext &, FunctionalSimulator &,
                 parallel::FleetResult &, stats::StatsRegistry &) {
        calls.fetch_add(1);
        throw GuestError("test", "same input, same failure");
    };

    FleetPolicy pol;
    pol.maxAttempts = 3;
    pol.backoffBaseNs = 1000;
    SimFleet fleet(1);
    FleetReport r = fleet.run({j}, pol);

    EXPECT_TRUE(r.results[0].quarantined);
    EXPECT_EQ(r.results[0].attempts, 1u);
    EXPECT_EQ(r.results[0].errorKind, ErrorKind::Guest);
    EXPECT_EQ(calls.load(), 1);
}

TEST_F(FleetContainmentTest, FailFastSkipsJobsAfterFirstQuarantine)
{
    std::vector<FleetJob> jobs;
    jobs.push_back(interpJob(*spec_, badEntry_, "malformed"));
    for (int i = 0; i < 4; ++i)
        jobs.push_back(interpJob(*spec_, healthy_, "healthy"));

    FleetPolicy pol;
    pol.keepGoing = false;
    SimFleet fleet(1); // single worker: the skip set is deterministic
    FleetReport r = fleet.run(jobs, pol);

    EXPECT_TRUE(r.results[0].quarantined);
    for (size_t i = 1; i < jobs.size(); ++i)
        EXPECT_TRUE(r.results[i].skipped) << "job " << i;
    auto *s = r.merged->resolve("fleet.health.skipped");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(static_cast<stats::Counter *>(s)->value(), 4u);
}

TEST_F(FleetContainmentTest, StrictSyscallModeIsPerJob)
{
    // li R0, 999; sys; hlt -- unknown OS call.  Lenient jobs get -1 and
    // halt; strict jobs quarantine with a GuestError from the OS layer.
    Program p = miniProgram({li(0, 999), kSysWord, kHltWord}, "unknown-sys");
    FleetJob lenient = interpJob(*spec_, p, "lenient");
    FleetJob strict = interpJob(*spec_, p, "strict");
    strict.strictSyscalls = true;

    SimFleet fleet(2);
    FleetReport r = fleet.run({lenient, strict});
    EXPECT_FALSE(r.results[0].quarantined) << r.results[0].error;
    EXPECT_EQ(r.results[0].run.status, RunStatus::Halted);
    EXPECT_TRUE(r.results[1].quarantined);
    EXPECT_EQ(r.results[1].errorKind, ErrorKind::Guest);
    EXPECT_NE(r.results[1].error.find("[os]"), std::string::npos)
        << r.results[1].error;
}

TEST_F(FleetContainmentTest, InjectedStateFaultIsDetectedAndCounted)
{
    FaultPlan plan;
    plan.events.push_back({FaultOp::PcBitFlip, /*trigger=*/2, 0, 1, false});
    FleetJob j = interpJob(*spec_, healthy_, "pc-flip");
    j.faultPlan = &plan;

    SimFleet fleet(1);
    FleetReport r = fleet.run({j});
    // The flip lands the PC past the address limit: detected as an
    // architectural fault, not silently absorbed.
    EXPECT_EQ(r.results[0].run.status, RunStatus::Fault);
    EXPECT_EQ(r.results[0].faultsInjected, 1u);
    auto *s = r.merged->resolve("fleet.health.faults_injected");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(static_cast<stats::Counter *>(s)->value(), 1u);
}

} // namespace
} // namespace onespec
