/**
 * @file
 * Tests of the C++ synthesizer itself: structural properties of the
 * emitted source.  The central claims of the specialization strategy are
 * checked textually -- hidden fields become locals (no stores into the
 * record at Min detail), journaling code appears only in speculation
 * profiles, and buildset selection filters what is generated.
 */

#include <gtest/gtest.h>

#include "codegen/cppgen.hpp"
#include "testutil.hpp"

namespace onespec {
namespace {

class CodegenTest : public ::testing::Test
{
  protected:
    void SetUp() override { spec_ = test::makeMiniSpec(); }
    std::unique_ptr<Spec> spec_;
};

/** Extract the body of one generated function. */
std::string
functionBody(const std::string &code, const std::string &name)
{
    size_t pos = code.find("Engine::" + name + "(DynInst &di)");
    if (pos == std::string::npos)
        return {};
    size_t open = code.find('{', pos);
    int depth = 0;
    for (size_t i = open; i < code.size(); ++i) {
        if (code[i] == '{')
            ++depth;
        else if (code[i] == '}' && --depth == 0)
            return code.substr(open, i - open + 1);
    }
    return {};
}

TEST_F(CodegenTest, GeneratesOneClassPerBuildset)
{
    std::string code = generateSimulators(*spec_);
    for (const auto &bs : spec_->buildsets) {
        EXPECT_NE(code.find("class Sim_" + bs.name), std::string::npos)
            << bs.name;
        EXPECT_NE(code.find("reg_" + bs.name), std::string::npos)
            << bs.name;
    }
}

TEST_F(CodegenTest, SingleBuildsetModeFiltersOutput)
{
    std::string code = generateSimulators(*spec_, "OneAllNo");
    EXPECT_NE(code.find("class Sim_OneAllNo"), std::string::npos);
    EXPECT_EQ(code.find("class Sim_OneMinNo"), std::string::npos);
    EXPECT_EQ(code.find("class Sim_StepAllNo"), std::string::npos);
}

TEST_F(CodegenTest, FingerprintIsEmbedded)
{
    std::string code = generateSimulators(*spec_, "OneAllNo");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(spec_->fingerprint));
    EXPECT_NE(code.find(buf), std::string::npos);
}

TEST_F(CodegenTest, MinDetailNeverTouchesTheRecordValues)
{
    // The whole point of the specialization: at Min informational detail
    // the generated entrypoints must contain no stores to di.vals at all
    // -- hidden fields are function-locals.
    std::string code = generateSimulators(*spec_, "OneMinNo");
    std::string body = functionBody(code, "g_p0_m7f");
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body.find("di.vals["), std::string::npos)
        << "Min-detail entrypoint stores into the record";
    EXPECT_EQ(body.find("di.opRegs["), std::string::npos);
    // Hidden slots exist as locals initialized to zero.
    EXPECT_NE(body.find("uint64_t s"), std::string::npos);
}

TEST_F(CodegenTest, AllDetailWritesThroughToTheRecord)
{
    std::string code = generateSimulators(*spec_, "OneAllNo");
    std::string body = functionBody(code, "g_p0_m7f");
    ASSERT_FALSE(body.empty());
    EXPECT_NE(body.find("di.vals["), std::string::npos);
    EXPECT_NE(body.find("di.opRegs["), std::string::npos);
}

TEST_F(CodegenTest, JournalingAppearsOnlyInSpeculationProfiles)
{
    std::string no_spec = generateSimulators(*spec_, "OneAllNo");
    std::string with_spec = generateSimulators(*spec_, "OneAllYes");
    EXPECT_EQ(functionBody(no_spec, "g_p0_m7f").find("journal"),
              std::string::npos);
    EXPECT_NE(functionBody(with_spec, "g_p0_m7f").find("journalBegin"),
              std::string::npos);
    EXPECT_NE(functionBody(with_spec, "g_p0_m7f").find("journalWord"),
              std::string::npos);
    EXPECT_NE(with_spec.find("memWrite<true>"), std::string::npos);
    EXPECT_NE(no_spec.find("memWrite<false>"), std::string::npos);
}

TEST_F(CodegenTest, StepBuildsetEmitsSevenGroupFunctions)
{
    std::string code = generateSimulators(*spec_, "StepAllNo");
    // One group per step: masks 1,2,4,...,0x40.
    for (unsigned s = 0; s < kNumSteps; ++s) {
        char fn[32];
        std::snprintf(fn, sizeof(fn), "g_p0_m%x(DynInst &di)", 1u << s);
        EXPECT_NE(code.find(fn), std::string::npos) << fn;
    }
}

TEST_F(CodegenTest, BuildsetsWithSameProfileShareGroupFunctions)
{
    // BlockAllNo and OneAllNo share (visibility, speculation): the
    // emitted file must contain exactly one full-mask group for them.
    std::string code = generateSimulators(*spec_);
    // Count definitions of the p-profile full-mask group used by
    // OneAllNo: a shared Engine method, defined once.
    size_t first = code.find("RunStatus\nEngine::g_p");
    EXPECT_NE(first, std::string::npos);
    // Every buildset class is thin: no per-buildset duplication of the
    // instruction switch (rough proxy: switches over di.opId appear only
    // in Engine methods, not in Sim_ classes).
    size_t cls = code.find("class Sim_");
    ASSERT_NE(cls, std::string::npos);
    EXPECT_EQ(code.find("switch (di.opId)", cls), std::string::npos);
}

TEST_F(CodegenTest, DecoderIsEmittedOnce)
{
    std::string code = generateSimulators(*spec_);
    size_t first = code.find("Engine::decodeWord(uint32_t w)");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(code.find("Engine::decodeWord(uint32_t w)", first + 1),
              std::string::npos);
}

TEST_F(CodegenTest, GeneratedCodeMentionsEveryInstruction)
{
    std::string code = generateSimulators(*spec_, "OneAllNo");
    for (const auto &ii : spec_->instrs) {
        EXPECT_NE(code.find("// " + ii.name), std::string::npos)
            << ii.name;
    }
}

TEST_F(CodegenTest, WhileLoopsEmitRunawayGuard)
{
    // Every emitted while loop must carry the shared iteration guard so
    // a divergent action faults the job identically on both back ends
    // (see support/sim_error.hpp).  Splice a while-bearing instruction
    // into the mini ISA and inspect the synthesized loop.
    std::string text = test::kMiniIsa;
    const std::string wloop = R"(instr wsum : RI match op == 20 {
    dst a = R[ra];
    action execute {
        u64 i = 0;
        u64 acc = 0;
        while (i < 4) { acc = acc + i; i = i + 1; }
        a = acc;
    }
}

)";
    size_t pos = text.find("instr hlt");
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos, wloop);

    auto spec = test::makeSpec(text);
    std::string code = generateSimulators(*spec, "OneAllNo");
    EXPECT_NE(code.find("uint64_t lg_0 = 0;"), std::string::npos);
    EXPECT_NE(code.find("::onespec::kActionLoopGuard"), std::string::npos);
    EXPECT_NE(code.find("::onespec::throwRunawayLoop(\"wsum\")"),
              std::string::npos);
    // The mini ISA itself has no while loops: no guard counters appear
    // without one.
    std::string plain = generateSimulators(*spec_, "OneAllNo");
    EXPECT_EQ(plain.find("lg_0"), std::string::npos);
    EXPECT_EQ(plain.find("throwRunawayLoop"), std::string::npos);
}

} // namespace
} // namespace onespec
