/**
 * @file
 * Unit tests for the LIS tokenizer.
 */

#include <gtest/gtest.h>

#include "adl/lexer.hpp"

namespace onespec {
namespace {

std::vector<Token>
lexOk(const std::string &src)
{
    DiagnosticEngine diags;
    auto toks = lex(src, "<test>", diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    return toks;
}

TEST(Lexer, EmptyInputYieldsEof)
{
    auto t = lexOk("");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].kind, TokKind::Eof);
}

TEST(Lexer, IdentifiersAndKeywordsAreAllIdents)
{
    auto t = lexOk("isa field _under score99 u32");
    ASSERT_EQ(t.size(), 6u);
    for (size_t i = 0; i + 1 < t.size(); ++i)
        EXPECT_EQ(t[i].kind, TokKind::Ident);
    EXPECT_EQ(t[0].text, "isa");
    EXPECT_EQ(t[1].text, "field");
    EXPECT_EQ(t[2].text, "_under");
    EXPECT_EQ(t[3].text, "score99");
}

TEST(Lexer, DecimalAndHexIntegers)
{
    auto t = lexOk("0 42 0x2A 0xffffffffffffffff 0XaB");
    EXPECT_EQ(t[0].intValue, 0u);
    EXPECT_EQ(t[1].intValue, 42u);
    EXPECT_EQ(t[2].intValue, 0x2au);
    EXPECT_EQ(t[3].intValue, ~uint64_t{0});
    EXPECT_EQ(t[4].intValue, 0xabu);
}

TEST(Lexer, IntegerOverflowIsAnError)
{
    DiagnosticEngine diags;
    lex("18446744073709551616", "<t>", diags); // 2^64
    EXPECT_TRUE(diags.hasErrors());
    DiagnosticEngine d2;
    lex("0x10000000000000000", "<t>", d2);
    EXPECT_TRUE(d2.hasErrors());
}

TEST(Lexer, BadSuffixOnNumberIsAnError)
{
    DiagnosticEngine diags;
    lex("123abc", "<t>", diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, TwoCharOperators)
{
    auto t = lexOk("== != <= >= << >> && ||");
    EXPECT_EQ(t[0].kind, TokKind::EqEq);
    EXPECT_EQ(t[1].kind, TokKind::NotEq);
    EXPECT_EQ(t[2].kind, TokKind::Le);
    EXPECT_EQ(t[3].kind, TokKind::Ge);
    EXPECT_EQ(t[4].kind, TokKind::Shl);
    EXPECT_EQ(t[5].kind, TokKind::Shr);
    EXPECT_EQ(t[6].kind, TokKind::AmpAmp);
    EXPECT_EQ(t[7].kind, TokKind::PipePipe);
}

TEST(Lexer, SingleCharOperatorsSplitCorrectly)
{
    auto t = lexOk("= ! < > & | + - * / % ^ ~ ? :");
    EXPECT_EQ(t[0].kind, TokKind::Assign);
    EXPECT_EQ(t[1].kind, TokKind::Bang);
    EXPECT_EQ(t[2].kind, TokKind::Lt);
    EXPECT_EQ(t[3].kind, TokKind::Gt);
    EXPECT_EQ(t[4].kind, TokKind::Amp);
    EXPECT_EQ(t[5].kind, TokKind::Pipe);
}

TEST(Lexer, CommentsRunToEndOfLine)
{
    auto t = lexOk("a # comment == {} \nb // another\nc");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].text, "a");
    EXPECT_EQ(t[1].text, "b");
    EXPECT_EQ(t[2].text, "c");
}

TEST(Lexer, LineAndColumnTracking)
{
    auto t = lexOk("a\n  b\n    c");
    EXPECT_EQ(t[0].loc.line, 1);
    EXPECT_EQ(t[0].loc.col, 1);
    EXPECT_EQ(t[1].loc.line, 2);
    EXPECT_EQ(t[1].loc.col, 3);
    EXPECT_EQ(t[2].loc.line, 3);
    EXPECT_EQ(t[2].loc.col, 5);
}

TEST(Lexer, UnexpectedCharacterReportsAndContinues)
{
    DiagnosticEngine diags;
    auto t = lex("a $ b", "<t>", diags);
    EXPECT_TRUE(diags.hasErrors());
    // Lexing continued past the bad character.
    ASSERT_GE(t.size(), 3u);
    EXPECT_EQ(t[0].text, "a");
    EXPECT_EQ(t[1].text, "b");
}

TEST(Lexer, PunctuationKinds)
{
    auto t = lexOk("{ } [ ] ( ) : ; , @ .");
    EXPECT_EQ(t[0].kind, TokKind::LBrace);
    EXPECT_EQ(t[1].kind, TokKind::RBrace);
    EXPECT_EQ(t[2].kind, TokKind::LBracket);
    EXPECT_EQ(t[3].kind, TokKind::RBracket);
    EXPECT_EQ(t[4].kind, TokKind::LParen);
    EXPECT_EQ(t[5].kind, TokKind::RParen);
    EXPECT_EQ(t[6].kind, TokKind::Colon);
    EXPECT_EQ(t[7].kind, TokKind::Semi);
    EXPECT_EQ(t[8].kind, TokKind::Comma);
    EXPECT_EQ(t[9].kind, TokKind::At);
    EXPECT_EQ(t[10].kind, TokKind::Dot);
}

} // namespace
} // namespace onespec
