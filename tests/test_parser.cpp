/**
 * @file
 * Unit tests for the LIS parser: structure recovery and located errors.
 */

#include <gtest/gtest.h>

#include "adl/parser.hpp"

namespace onespec {
namespace {

Description
parseOk(const std::string &src)
{
    DiagnosticEngine diags;
    Description d = parseString(src, diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    return d;
}

std::string
parseErr(const std::string &src)
{
    DiagnosticEngine diags;
    parseString(src, diags);
    EXPECT_TRUE(diags.hasErrors()) << "expected a parse error";
    return diags.str();
}

TEST(Parser, IsaProperties)
{
    auto d = parseOk("isa t { bits 32; instr_bytes 4; endian big; }");
    EXPECT_EQ(d.isa.name, "t");
    EXPECT_EQ(d.isa.wordBits, 32u);
    EXPECT_FALSE(d.isa.littleEndian);
}

TEST(Parser, DuplicateIsaIsError)
{
    parseErr("isa a { bits 32; } isa b { bits 32; }");
}

TEST(Parser, BadWordSizeIsError)
{
    parseErr("isa t { bits 33; }");
}

TEST(Parser, StateBlock)
{
    auto d = parseOk("state { regfile R[32] : u64 zero 31; reg CR : u32; }");
    ASSERT_EQ(d.regfiles.size(), 1u);
    EXPECT_EQ(d.regfiles[0].count, 32u);
    EXPECT_EQ(d.regfiles[0].zeroReg, 31);
    EXPECT_EQ(d.regfiles[0].type, U64);
    ASSERT_EQ(d.regs.size(), 1u);
    EXPECT_EQ(d.regs[0].name, "CR");
}

TEST(Parser, ZeroRegOutOfRangeIsError)
{
    parseErr("state { regfile R[8] : u64 zero 8; }");
}

TEST(Parser, FieldCategories)
{
    auto d = parseOk("field ea : u64 decode; field x : u8;");
    ASSERT_EQ(d.fields.size(), 2u);
    EXPECT_EQ(d.fields[0].category, FieldCategory::Decode);
    EXPECT_EQ(d.fields[1].category, FieldCategory::All);
    EXPECT_EQ(d.fields[1].type, U8);
}

TEST(Parser, FormatBitRanges)
{
    auto d = parseOk("format F { op[31:26] r[25:21] flag[4] }");
    ASSERT_EQ(d.formats.size(), 1u);
    ASSERT_EQ(d.formats[0].fields.size(), 3u);
    EXPECT_EQ(d.formats[0].fields[0].hi, 31u);
    EXPECT_EQ(d.formats[0].fields[0].lo, 26u);
    // Single-bit shorthand.
    EXPECT_EQ(d.formats[0].fields[2].hi, 4u);
    EXPECT_EQ(d.formats[0].fields[2].lo, 4u);
}

TEST(Parser, ReversedBitRangeIsError)
{
    parseErr("format F { op[3:8] }");
}

TEST(Parser, InstrWithMatchOperandsActions)
{
    auto d = parseOk(R"(
        format F { op[31:26] ra[25:21] rb[20:16] }
        instr foo : F match op == 7, ra == 1 {
            src a = R[rb];
            dst b = R[ra];
            action execute { b = a + 1; }
        })");
    ASSERT_EQ(d.instrs.size(), 1u);
    const InstrDecl &i = d.instrs[0];
    EXPECT_EQ(i.formatName, "F");
    ASSERT_EQ(i.match.size(), 2u);
    EXPECT_EQ(i.match[1].value, 1u);
    ASSERT_EQ(i.operands.size(), 2u);
    EXPECT_FALSE(i.operands[0].isDst);
    EXPECT_TRUE(i.operands[1].isDst);
    ASSERT_EQ(i.actions.size(), 1u);
    EXPECT_EQ(i.actions[0].step, "execute");
}

TEST(Parser, LateActions)
{
    auto d = parseOk(R"(
        opclass c : F { action late execute { } }
    )");
    ASSERT_EQ(d.classes.size(), 1u);
    EXPECT_TRUE(d.classes[0].actions[0].late);
}

TEST(Parser, Helpers)
{
    auto d = parseOk("helper h { u32 x = 1; }");
    ASSERT_EQ(d.helpers.size(), 1u);
    EXPECT_EQ(d.helpers[0].name, "h");
}

TEST(Parser, InlineStatement)
{
    auto d = parseOk(R"(
        instr i : F match op == 1 {
            action execute { inline h; }
        })");
    const Stmt &body = *d.instrs[0].actions[0].body;
    ASSERT_EQ(body.body.size(), 1u);
    EXPECT_EQ(body.body[0]->kind, Stmt::Kind::Inline);
    EXPECT_EQ(body.body[0]->name, "h");
}

TEST(Parser, BuildsetShorthands)
{
    auto d = parseOk(
        "buildset B { semantic block; info decode; speculation on; }");
    ASSERT_EQ(d.buildsets.size(), 1u);
    EXPECT_EQ(d.buildsets[0].semantic, SemanticLevel::Block);
    EXPECT_EQ(d.buildsets[0].info, InfoLevel::Decode);
    EXPECT_TRUE(d.buildsets[0].speculation);
}

TEST(Parser, BuildsetCustomEntrypointsAndVisibility)
{
    auto d = parseOk(R"(
        buildset B {
            entrypoint front = fetch, decode;
            entrypoint rest = execute;
            visibility hide ea, foo;
        })");
    const BuildsetDecl &b = d.buildsets[0];
    EXPECT_EQ(b.semantic, SemanticLevel::Custom);
    EXPECT_EQ(b.info, InfoLevel::Custom);
    ASSERT_EQ(b.entrypoints.size(), 2u);
    EXPECT_EQ(b.entrypoints[0].steps.size(), 2u);
    EXPECT_EQ(b.hideList.size(), 2u);
}

TEST(Parser, ExpressionPrecedence)
{
    auto d = parseOk(R"(
        instr i : F match op == 1 {
            action execute { x = 1 + 2 * 3; }
        })");
    // x = (1 + (2 * 3)): root value is Add whose rhs is Mul.
    const Stmt &assign = *d.instrs[0].actions[0].body->body[0];
    ASSERT_EQ(assign.kind, Stmt::Kind::Assign);
    ASSERT_EQ(assign.value->kind, Expr::Kind::Binary);
    EXPECT_EQ(assign.value->binOp, BinOp::Add);
    EXPECT_EQ(assign.value->b->binOp, BinOp::Mul);
}

TEST(Parser, CastVsParenDisambiguation)
{
    auto d = parseOk(R"(
        instr i : F match op == 1 {
            action execute { x = (u32)y; z = (y); }
        })");
    const auto &stmts = d.instrs[0].actions[0].body->body;
    EXPECT_EQ(stmts[0]->value->kind, Expr::Kind::Cast);
    EXPECT_EQ(stmts[1]->value->kind, Expr::Kind::Ident);
}

TEST(Parser, TernaryAndLogical)
{
    auto d = parseOk(R"(
        instr i : F match op == 1 {
            action execute { x = a && b ? c : d || e; }
        })");
    const Expr &e = *d.instrs[0].actions[0].body->body[0]->value;
    EXPECT_EQ(e.kind, Expr::Kind::Ternary);
    EXPECT_EQ(e.a->binOp, BinOp::LogAnd);
    EXPECT_EQ(e.c->binOp, BinOp::LogOr);
}

TEST(Parser, IfElseWhile)
{
    auto d = parseOk(R"(
        instr i : F match op == 1 {
            action execute {
                if (a) x = 1; else x = 2;
                while (x < 10) x = x + 1;
            }
        })");
    const auto &stmts = d.instrs[0].actions[0].body->body;
    EXPECT_EQ(stmts[0]->kind, Stmt::Kind::If);
    ASSERT_NE(stmts[0]->elseStmt, nullptr);
    EXPECT_EQ(stmts[1]->kind, Stmt::Kind::While);
}

TEST(Parser, AssignToNonIdentIsError)
{
    parseErr(R"(
        instr i : F match op == 1 {
            action execute { 1 + 2 = 3; }
        })");
}

TEST(Parser, MissingSemicolonIsError)
{
    parseErr("field x : u64");
}

TEST(Parser, ErrorRecoveryContinuesToNextDecl)
{
    DiagnosticEngine diags;
    Description d = parseString(
        "field : u64;\nfield ok : u32;", diags);
    EXPECT_TRUE(diags.hasErrors());
    // The second field should still have parsed.
    bool found = false;
    for (const auto &f : d.fields)
        if (f.name == "ok")
            found = true;
    EXPECT_TRUE(found);
}

TEST(Parser, MultiFileMerge)
{
    DiagnosticEngine diags;
    std::vector<SourceFile> files = {
        {"isa t { bits 32; } field a : u8;", "one.lis"},
        {"field b : u16;", "two.lis"},
    };
    Description d = parseFiles(files, diags);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_EQ(d.isa.name, "t");
    EXPECT_EQ(d.fields.size(), 2u);
}

} // namespace
} // namespace onespec
