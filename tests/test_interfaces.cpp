/**
 * @file
 * Interface-behaviour tests: custom entrypoints, unsupported-entrypoint
 * panics, fast-forward semantics, and the paper's central failure mode --
 * hiding a field whose value must cross entrypoints makes the simulation
 * go wrong within a few instructions (Section IV-B step 4).
 */

#include <gtest/gtest.h>

#include "adl/encode.hpp"
#include "adl/load.hpp"
#include "adl/parser.hpp"
#include "adl/sema.hpp"
#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "support/panic_exception.hpp"
#include "testutil.hpp"
#include "workload/kernels.hpp"

namespace onespec {
namespace {

TEST(Interfaces, UnsupportedEntrypointPanicsWithBuildsetName)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    InterpSimulator sim(ctx, *spec->findBuildset("OneAllNo"));
    ScopedThrowOnPanic guard;
    DynInst di[4];
    RunStatus st;
    // A One-detail interpreter offers execute() but not fastForward().
    EXPECT_THROW(sim.fastForward(10, st), PanicException);
    EXPECT_THROW(sim.undo(1), PanicException);
    (void)di;
}

TEST(Interfaces, UndoWithoutSpeculationPanicsOnGenerated)
{
    auto spec = loadIsa("alpha64");
    SimContext ctx(*spec);
    auto sim = SimRegistry::instance().create(ctx, "OneAllNo");
    ASSERT_NE(sim, nullptr);
    ScopedThrowOnPanic guard;
    EXPECT_THROW(sim->undo(1), PanicException);
}

TEST(Interfaces, CustomFrontRestBuildsetExecutesCorrectly)
{
    // The FrontRest buildset splits fetch+decode from the rest -- the
    // paper's Figure 4 style of custom interface.
    auto spec = loadIsa("alpha64");
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, "fib", 50);
    std::string golden = goldenOutput("fib", 50);

    for (bool generated : {false, true}) {
        SimContext ctx(*spec);
        ctx.load(prog);
        std::unique_ptr<FunctionalSimulator> sim;
        if (generated)
            sim = SimRegistry::instance().create(ctx, "FrontRest");
        else
            sim = makeInterpSimulator(ctx, "FrontRest");
        ASSERT_NE(sim, nullptr);
        RunResult rr = sim->run(100000);
        EXPECT_EQ(rr.status, RunStatus::Halted) << generated;
        EXPECT_EQ(ctx.os().output(), golden) << generated;
    }
}

TEST(Interfaces, HiddenCrossEntrypointFieldDivergesQuickly)
{
    // Reproduce the paper's observation: "it is usually impossible to
    // simulate more than a few hundred instructions before the
    // simulation goes wrong" when a needed value is hidden.  We hide
    // effective_addr while splitting execute from memory across
    // entrypoints: loads then access address 0 instead.
    std::string extra = R"(
buildset LossyTest {
    visibility hide effective_addr;
    entrypoint front = fetch, decode, read_operands, execute;
    entrypoint back  = memory, writeback, exception;
}
)";
    std::vector<SourceFile> files;
    for (const auto &p : isaDescriptionFiles("alpha64"))
        files.push_back({readFileOrFatal(p), p});
    files.push_back({extra, "<lossy>"});
    DiagnosticEngine diags;
    auto spec = analyze(parseFiles(files, diags), diags);
    ASSERT_FALSE(diags.hasErrors()) << diags.str();
    // The completeness checker warned about exactly this.
    bool warned = false;
    for (const auto &d : diags.all()) {
        if (d.severity == DiagSeverity::Warning &&
            d.message.find("LossyTest") != std::string::npos) {
            warned = true;
        }
    }
    EXPECT_TRUE(warned);

    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, "sieve", 200);
    std::string golden = goldenOutput("sieve", 200);

    SimContext ctx(*spec);
    ctx.load(prog);
    InterpSimulator sim(ctx, *spec->findBuildset("LossyTest"));
    DynInst di;
    RunStatus st = RunStatus::Ok;
    uint64_t n = 0;
    while (st == RunStatus::Ok && n < 100000) {
        st = sim.call(0, di);
        if (st == RunStatus::Ok)
            st = sim.call(1, di);
        ++n;
    }
    // Whatever happened, it is not the correct run.
    EXPECT_NE(ctx.os().output(), golden);
}

TEST(Interfaces, FastForwardCountsPartialRuns)
{
    auto spec = loadIsa("alpha64");
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, "fib", 10); // short program
    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = SimRegistry::instance().create(ctx, "BlockMinNo");
    RunStatus st = RunStatus::Ok;
    uint64_t done = sim->fastForward(1'000'000, st);
    EXPECT_EQ(st, RunStatus::Halted);
    EXPECT_LT(done, 1'000'000u);
    EXPECT_GT(done, 50u);
}

TEST(Interfaces, ExecuteBlockStopsAtControlFlow)
{
    auto spec = loadIsa("alpha64");
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, "fib", 1000);
    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = SimRegistry::instance().create(ctx, "BlockAllNo");
    DynInst block[64];
    RunStatus st = RunStatus::Ok;
    for (int rounds = 0; rounds < 50 && st == RunStatus::Ok; ++rounds) {
        unsigned n = sim->executeBlock(block, 64, st);
        ASSERT_GT(n, 0u);
        // Only the last instruction of a full block may be control flow.
        for (unsigned i = 0; i + 1 < n; ++i) {
            EXPECT_FALSE(spec->instrs[block[i].opId].isControlFlow)
                << "round " << rounds << " instr " << i;
        }
    }
}

TEST(Interfaces, ExecuteBlockHonorsCap)
{
    auto spec = loadIsa("alpha64");
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, "crc32", 100);
    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = SimRegistry::instance().create(ctx, "BlockMinNo");
    DynInst block[64];
    RunStatus st = RunStatus::Ok;
    unsigned n = sim->executeBlock(block, 3, st);
    EXPECT_LE(n, 3u);
    EXPECT_GT(n, 0u);
}

TEST(Interfaces, StepInterfaceDrivesInstructionPiecewise)
{
    auto spec = loadIsa("alpha64");
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, "fib", 5);
    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = SimRegistry::instance().create(ctx, "StepAllNo");

    DynInst di;
    // Drive the first instruction step by step and observe the record
    // filling in.
    EXPECT_EQ(sim->step(Step::Fetch, di), RunStatus::Ok);
    EXPECT_NE(di.inst, 0u);
    EXPECT_EQ(di.opId, 0xffff); // not yet decoded
    EXPECT_EQ(sim->step(Step::Decode, di), RunStatus::Ok);
    EXPECT_NE(di.opId, 0xffff);
    uint64_t pc_before = ctx.state().pc();
    EXPECT_EQ(sim->step(Step::ReadOperands, di), RunStatus::Ok);
    EXPECT_EQ(sim->step(Step::Execute, di), RunStatus::Ok);
    EXPECT_EQ(sim->step(Step::Memory, di), RunStatus::Ok);
    EXPECT_EQ(sim->step(Step::Writeback, di), RunStatus::Ok);
    // pc only advances at retire.
    EXPECT_EQ(ctx.state().pc(), pc_before);
    EXPECT_EQ(sim->step(Step::Exception, di), RunStatus::Ok);
    EXPECT_EQ(ctx.state().pc(), pc_before + 4);
}

TEST(Interfaces, RedirectSteersNextFetch)
{
    auto spec = loadIsa("alpha64");
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, "fib", 5);
    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = SimRegistry::instance().create(ctx, "OneAllNo");
    DynInst di;
    EXPECT_EQ(sim->execute(di), RunStatus::Ok);
    uint64_t entry = prog.entry;
    sim->redirect(entry);
    DynInst di2;
    EXPECT_EQ(sim->execute(di2), RunStatus::Ok);
    EXPECT_EQ(di2.pc, entry);
    EXPECT_EQ(di2.inst, di.inst);
}

TEST(Interfaces, FingerprintMismatchIsFatal)
{
    // A spec with the same buildset names but different instructions must
    // be refused by the registry.
    auto other = test::makeMiniSpec(); // isa name "mini" != registered
    SimContext ctx(*other);
    EXPECT_EQ(SimRegistry::instance().create(ctx, "OneAllNo"), nullptr);
}

TEST(Interfaces, RegistryListsAllTwelveBuildsetsPerIsa)
{
    for (const auto &isa : shippedIsas()) {
        auto names = SimRegistry::instance().buildsetsFor(isa);
        EXPECT_GE(names.size(), 13u) << isa; // 12 + FrontRest
    }
}

} // namespace
} // namespace onespec
