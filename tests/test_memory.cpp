/**
 * @file
 * Unit tests for the sparse paged memory.
 */

#include <vector>

#include <gtest/gtest.h>

#include "runtime/memory.hpp"

namespace onespec {
namespace {

TEST(Memory, ReadsOfUntouchedMemoryAreZero)
{
    Memory m;
    FaultKind f = FaultKind::None;
    EXPECT_EQ(m.read(0x1234, 8, f), 0u);
    EXPECT_EQ(f, FaultKind::None);
    EXPECT_EQ(m.pageCount(), 0u); // reads do not allocate
}

TEST(Memory, WriteReadRoundTrip)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x1000, 0xdeadbeefcafef00dull, 8, f);
    EXPECT_EQ(m.read(0x1000, 8, f), 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.read(0x1000, 4, f), 0xcafef00dull);
    EXPECT_EQ(m.read(0x1004, 4, f), 0xdeadbeefull);
    EXPECT_EQ(m.read(0x1000, 1, f), 0x0dull);
    EXPECT_EQ(f, FaultKind::None);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    FaultKind f = FaultKind::None;
    uint64_t addr = Memory::kPageSize - 4;
    m.write(addr, 0x1122334455667788ull, 8, f);
    EXPECT_EQ(f, FaultKind::None);
    EXPECT_EQ(m.read(addr, 8, f), 0x1122334455667788ull);
    EXPECT_EQ(m.pageCount(), 2u);
    // The two halves land on each side of the boundary.
    EXPECT_EQ(m.read(addr, 4, f), 0x55667788ull);
    EXPECT_EQ(m.read(Memory::kPageSize, 4, f), 0x11223344ull);
}

TEST(Memory, BigEndianByteOrder)
{
    Memory m(true);
    FaultKind f = FaultKind::None;
    m.write(0x100, 0x11223344, 4, f);
    EXPECT_EQ(m.readByte(0x100), 0x11);
    EXPECT_EQ(m.readByte(0x103), 0x44);
    EXPECT_EQ(m.read(0x100, 4, f), 0x11223344u);
    EXPECT_EQ(m.read(0x100, 2, f), 0x1122u);
}

TEST(Memory, LittleEndianByteOrder)
{
    Memory m(false);
    FaultKind f = FaultKind::None;
    m.write(0x100, 0x11223344, 4, f);
    EXPECT_EQ(m.readByte(0x100), 0x44);
    EXPECT_EQ(m.readByte(0x103), 0x11);
}

TEST(Memory, AddressLimitFaults)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(Memory::kAddrLimit, 1, 1, f);
    EXPECT_EQ(f, FaultKind::BadMemory);
    f = FaultKind::None;
    (void)m.read(Memory::kAddrLimit - 1, 8, f);
    EXPECT_EQ(f, FaultKind::BadMemory);
    f = FaultKind::None;
    (void)m.read(Memory::kAddrLimit - 8, 8, f);
    EXPECT_EQ(f, FaultKind::None);
}

TEST(Memory, AddressLimitCheckSurvivesWraparound)
{
    // addr + len overflows uint64_t here; a naive `addr + len > limit`
    // wraps to a small value and lets the access through.
    Memory m;
    FaultKind f = FaultKind::None;
    (void)m.read(~uint64_t{0} - 3, 8, f);
    EXPECT_EQ(f, FaultKind::BadMemory);
    f = FaultKind::None;
    m.write(~uint64_t{0} - 3, 0x55, 8, f);
    EXPECT_EQ(f, FaultKind::BadMemory);
    EXPECT_EQ(m.pageCount(), 0u); // the faulting write allocated nothing
}

TEST(Memory, FaultHookDefaultsToDetached)
{
    Memory m;
    EXPECT_EQ(m.faultHook(), nullptr);
}

/** Scripted hook: flips a value bit on the Nth read, or raises a fault
 *  on writes, mimicking the narrow contract src/fault/ relies on. */
struct ScriptedHook final : Memory::FaultHook
{
    unsigned reads = 0;
    unsigned flipOnRead = 0;     ///< 1-based ordinal; 0 = never
    bool faultWrites = false;

    void
    onRead(uint64_t, unsigned len, uint64_t &value, FaultKind &) override
    {
        if (++reads == flipOnRead)
            value ^= uint64_t{1} << (8 * len - 1);
    }

    void
    onWrite(uint64_t, unsigned, uint64_t &, FaultKind &fault) override
    {
        if (faultWrites)
            fault = FaultKind::BadMemory;
    }
};

TEST(Memory, FaultHookObservesAndPerturbsReads)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x100, 0x11, 8, f);

    ScriptedHook hook;
    hook.flipOnRead = 2;
    m.setFaultHook(&hook);
    EXPECT_EQ(m.read(0x100, 8, f), 0x11u);                     // read #1
    EXPECT_EQ(m.read(0x100, 8, f), 0x11u ^ (uint64_t{1} << 63)); // read #2
    EXPECT_EQ(m.read(0x100, 8, f), 0x11u);                     // read #3
    EXPECT_EQ(f, FaultKind::None);
    EXPECT_EQ(hook.reads, 3u);

    // Detaching restores clean reads unconditionally.
    m.setFaultHook(nullptr);
    EXPECT_EQ(m.read(0x100, 8, f), 0x11u);
    EXPECT_EQ(hook.reads, 3u);
}

TEST(Memory, FaultHookRaisedWriteFaultSuppressesTheStore)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x200, 0xaa, 1, f);

    ScriptedHook hook;
    hook.faultWrites = true;
    m.setFaultHook(&hook);
    f = FaultKind::None;
    m.write(0x200, 0xbb, 1, f);
    EXPECT_EQ(f, FaultKind::BadMemory);
    m.setFaultHook(nullptr);
    f = FaultKind::None;
    EXPECT_EQ(m.read(0x200, 1, f), 0xaau) << "faulted store leaked";
}

TEST(Memory, BlockCopy)
{
    Memory m;
    std::vector<uint8_t> src(100000);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<uint8_t>(i * 7);
    uint64_t base = Memory::kPageSize - 1234;
    m.writeBlock(base, src.data(), src.size());
    std::vector<uint8_t> dst(src.size());
    m.readBlock(base, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
}

TEST(Memory, ReadBlockFromUnmappedIsZero)
{
    Memory m;
    uint8_t buf[16] = {0xff, 0xff};
    m.readBlock(0x999000, buf, sizeof(buf));
    for (uint8_t b : buf)
        EXPECT_EQ(b, 0);
}

TEST(Memory, ClearDropsContents)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x0, 42, 8, f);
    EXPECT_GT(m.pageCount(), 0u);
    m.clear();
    EXPECT_EQ(m.pageCount(), 0u);
    EXPECT_EQ(m.read(0x0, 8, f), 0u);
}

TEST(Memory, PageCacheSurvivesInterleavedPages)
{
    Memory m;
    FaultKind f = FaultKind::None;
    // Ping-pong between pages to exercise the one-entry cache.
    for (int i = 0; i < 100; ++i) {
        m.write(0x0 + i, static_cast<uint64_t>(i), 1, f);
        m.write(Memory::kPageSize * 3 + i, static_cast<uint64_t>(i + 1),
                1, f);
    }
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(m.read(0x0 + i, 1, f), static_cast<uint64_t>(i) & 0xff);
        EXPECT_EQ(m.read(Memory::kPageSize * 3 + i, 1, f),
                  static_cast<uint64_t>(i + 1) & 0xff);
    }
}

// ---------------------------------------------------------------------
// Dirty-page tracking (what the checkpoint layer's deltas rest on)
// ---------------------------------------------------------------------

TEST(MemoryDirty, EpochAdvancesAndMarksSubsequentWrites)
{
    Memory m;
    FaultKind f = FaultKind::None;
    EXPECT_EQ(m.currentEpoch(), 1u);
    m.write(0x1000, 1, 8, f);
    EXPECT_EQ(m.pageEpoch(0), 1u);

    uint64_t mark = m.newEpoch();
    EXPECT_EQ(mark, 2u);
    EXPECT_EQ(m.dirtyPageCount(mark), 0u); // nothing written since

    m.write(0x2000, 2, 8, f); // same page, re-dirtied
    EXPECT_EQ(m.pageEpoch(0), mark);
    EXPECT_EQ(m.dirtyPageCount(mark), 1u);
    EXPECT_EQ(m.pageEpoch(99), 0u); // unallocated pages have epoch 0
}

TEST(MemoryDirty, CrossPageWriteDirtiesBothPages)
{
    Memory m;
    FaultKind f = FaultKind::None;
    // Pre-allocate both pages in an old epoch, then straddle the
    // boundary: the single write must re-mark *both* sides.
    m.write(Memory::kPageSize - 8, 0, 8, f);
    m.write(Memory::kPageSize, 0, 8, f);
    uint64_t mark = m.newEpoch();
    m.write(Memory::kPageSize - 4, 0x1122334455667788ull, 8, f);
    EXPECT_EQ(m.pageEpoch(0), mark);
    EXPECT_EQ(m.pageEpoch(1), mark);
    EXPECT_EQ(m.dirtyPageCount(mark), 2u);
}

TEST(MemoryDirty, WriteCacheCannotSkipReMarkingAfterNewEpoch)
{
    // Regression guard for the write fast path: a page sitting in the
    // one-entry write cache is already marked for the current epoch; a
    // checkpoint (newEpoch) must force its next write back through the
    // slow path so the page is re-marked in the new epoch.
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x100, 1, 8, f); // page 0 now cached for epoch 1
    uint64_t mark = m.newEpoch();
    EXPECT_EQ(m.dirtyPageCount(mark), 0u);
    m.write(0x108, 2, 8, f); // hits the same page immediately
    EXPECT_EQ(m.pageEpoch(0), mark)
        << "write cache let a post-checkpoint write keep the old epoch";
    EXPECT_EQ(m.dirtyPageCount(mark), 1u);
}

TEST(MemoryDirty, ReadsNeverDirty)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x1000, 42, 8, f);
    uint64_t mark = m.newEpoch();
    (void)m.read(0x1000, 8, f);
    (void)m.readByte(0x1001);
    uint8_t buf[256];
    m.readBlock(0x1000, buf, sizeof(buf));
    EXPECT_EQ(m.dirtyPageCount(mark), 0u);
    EXPECT_EQ(m.pageEpoch(0), 1u);
}

TEST(MemoryDirty, BulkWritesDirtyEveryTouchedPage)
{
    Memory m;
    uint64_t mark = m.newEpoch();
    std::vector<uint8_t> blob(3 * Memory::kPageSize);
    m.writeBlock(Memory::kPageSize / 2, blob.data(), blob.size());
    // Half page + 3 full pages of span -> 4 pages touched.
    EXPECT_EQ(m.dirtyPageCount(mark), 4u);
}

TEST(MemoryDirty, InstallPageOverwritesPreexistingContents)
{
    // The delta-restore path: install a page image over a context that
    // already holds pages (the parent checkpoint's memory).
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x0, 0xaaaaaaaaaaaaaaaaull, 8, f);
    m.write(Memory::kPageSize, 0xbbbbbbbbbbbbbbbbull, 8, f);
    uint64_t mark = m.newEpoch();

    std::vector<uint8_t> img(Memory::kPageSize, 0xcd);
    m.installPage(0, img.data());
    EXPECT_EQ(m.read(0x0, 8, f), 0xcdcdcdcdcdcdcdcdull);
    // The untouched neighbor keeps both contents and old epoch.
    EXPECT_EQ(m.read(Memory::kPageSize, 8, f), 0xbbbbbbbbbbbbbbbbull);
    EXPECT_EQ(m.pageEpoch(0), mark);
    EXPECT_EQ(m.pageEpoch(1), 1u);

    // Installing at a fresh index allocates.
    m.installPage(7, img.data());
    EXPECT_EQ(m.read(7 * Memory::kPageSize, 8, f),
              0xcdcdcdcdcdcdcdcdull);
    EXPECT_EQ(m.pageCount(), 3u);
}

TEST(MemoryDirty, ForEachPageReportsEpochs)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x0, 1, 8, f);
    uint64_t mark = m.newEpoch();
    m.write(Memory::kPageSize * 5, 2, 8, f);

    size_t seen = 0, dirty = 0;
    m.forEachPage([&](uint64_t idx, const uint8_t *data, uint64_t e) {
        ASSERT_NE(data, nullptr);
        ++seen;
        if (e >= mark) {
            ++dirty;
            EXPECT_EQ(idx, 5u);
        }
    });
    EXPECT_EQ(seen, 2u);
    EXPECT_EQ(dirty, 1u);
}

TEST(MemoryDirty, ClearKeepsEpochClockRunning)
{
    // A checkpoint's epoch mark must stay meaningful across a clear
    // (full restore does clear-then-install): pages written afterwards
    // still compare >= the old mark.
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x0, 1, 8, f);
    uint64_t mark = m.newEpoch();
    m.clear();
    EXPECT_EQ(m.currentEpoch(), mark);
    m.write(0x0, 2, 8, f);
    EXPECT_EQ(m.pageEpoch(0), mark);
    EXPECT_EQ(m.dirtyPageCount(mark), 1u);
}

} // namespace
} // namespace onespec
