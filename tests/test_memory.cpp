/**
 * @file
 * Unit tests for the sparse paged memory.
 */

#include <gtest/gtest.h>

#include "runtime/memory.hpp"

namespace onespec {
namespace {

TEST(Memory, ReadsOfUntouchedMemoryAreZero)
{
    Memory m;
    FaultKind f = FaultKind::None;
    EXPECT_EQ(m.read(0x1234, 8, f), 0u);
    EXPECT_EQ(f, FaultKind::None);
    EXPECT_EQ(m.pageCount(), 0u); // reads do not allocate
}

TEST(Memory, WriteReadRoundTrip)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x1000, 0xdeadbeefcafef00dull, 8, f);
    EXPECT_EQ(m.read(0x1000, 8, f), 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.read(0x1000, 4, f), 0xcafef00dull);
    EXPECT_EQ(m.read(0x1004, 4, f), 0xdeadbeefull);
    EXPECT_EQ(m.read(0x1000, 1, f), 0x0dull);
    EXPECT_EQ(f, FaultKind::None);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    FaultKind f = FaultKind::None;
    uint64_t addr = Memory::kPageSize - 4;
    m.write(addr, 0x1122334455667788ull, 8, f);
    EXPECT_EQ(f, FaultKind::None);
    EXPECT_EQ(m.read(addr, 8, f), 0x1122334455667788ull);
    EXPECT_EQ(m.pageCount(), 2u);
    // The two halves land on each side of the boundary.
    EXPECT_EQ(m.read(addr, 4, f), 0x55667788ull);
    EXPECT_EQ(m.read(Memory::kPageSize, 4, f), 0x11223344ull);
}

TEST(Memory, BigEndianByteOrder)
{
    Memory m(true);
    FaultKind f = FaultKind::None;
    m.write(0x100, 0x11223344, 4, f);
    EXPECT_EQ(m.readByte(0x100), 0x11);
    EXPECT_EQ(m.readByte(0x103), 0x44);
    EXPECT_EQ(m.read(0x100, 4, f), 0x11223344u);
    EXPECT_EQ(m.read(0x100, 2, f), 0x1122u);
}

TEST(Memory, LittleEndianByteOrder)
{
    Memory m(false);
    FaultKind f = FaultKind::None;
    m.write(0x100, 0x11223344, 4, f);
    EXPECT_EQ(m.readByte(0x100), 0x44);
    EXPECT_EQ(m.readByte(0x103), 0x11);
}

TEST(Memory, AddressLimitFaults)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(Memory::kAddrLimit, 1, 1, f);
    EXPECT_EQ(f, FaultKind::BadMemory);
    f = FaultKind::None;
    (void)m.read(Memory::kAddrLimit - 1, 8, f);
    EXPECT_EQ(f, FaultKind::BadMemory);
    f = FaultKind::None;
    (void)m.read(Memory::kAddrLimit - 8, 8, f);
    EXPECT_EQ(f, FaultKind::None);
}

TEST(Memory, BlockCopy)
{
    Memory m;
    std::vector<uint8_t> src(100000);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<uint8_t>(i * 7);
    uint64_t base = Memory::kPageSize - 1234;
    m.writeBlock(base, src.data(), src.size());
    std::vector<uint8_t> dst(src.size());
    m.readBlock(base, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
}

TEST(Memory, ReadBlockFromUnmappedIsZero)
{
    Memory m;
    uint8_t buf[16] = {0xff, 0xff};
    m.readBlock(0x999000, buf, sizeof(buf));
    for (uint8_t b : buf)
        EXPECT_EQ(b, 0);
}

TEST(Memory, ClearDropsContents)
{
    Memory m;
    FaultKind f = FaultKind::None;
    m.write(0x0, 42, 8, f);
    EXPECT_GT(m.pageCount(), 0u);
    m.clear();
    EXPECT_EQ(m.pageCount(), 0u);
    EXPECT_EQ(m.read(0x0, 8, f), 0u);
}

TEST(Memory, PageCacheSurvivesInterleavedPages)
{
    Memory m;
    FaultKind f = FaultKind::None;
    // Ping-pong between pages to exercise the one-entry cache.
    for (int i = 0; i < 100; ++i) {
        m.write(0x0 + i, static_cast<uint64_t>(i), 1, f);
        m.write(Memory::kPageSize * 3 + i, static_cast<uint64_t>(i + 1),
                1, f);
    }
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(m.read(0x0 + i, 1, f), static_cast<uint64_t>(i) & 0xff);
        EXPECT_EQ(m.read(Memory::kPageSize * 3 + i, 1, f),
                  static_cast<uint64_t>(i + 1) & 0xff);
    }
}

} // namespace
} // namespace onespec
