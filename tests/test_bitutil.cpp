/**
 * @file
 * Unit tests for the bit-manipulation helpers every layer builds on.
 */

#include <gtest/gtest.h>

#include "support/bitutil.hpp"

namespace onespec {
namespace {

TEST(BitUtil, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(16), 0xffffu);
    EXPECT_EQ(lowMask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(lowMask(64), ~uint64_t{0});
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xdeadbeef, 7, 4), 0xeu);
    EXPECT_EQ(bits(0x80000000u, 31, 31), 1u);
    EXPECT_EQ(bits(~uint64_t{0}, 63, 0), ~uint64_t{0});
}

TEST(BitUtil, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffffffff, 15, 8, 0), 0xffff00ffu);
    EXPECT_EQ(insertBits(0, 31, 31, 1), 0x80000000u);
    // Value wider than the field is masked.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(BitUtil, SextZext)
{
    EXPECT_EQ(sext(0x80, 8), 0xffffffffffffff80ull);
    EXPECT_EQ(sext(0x7f, 8), 0x7fu);
    EXPECT_EQ(sext(0xffff, 16), ~uint64_t{0});
    EXPECT_EQ(sext(0x8000, 16), 0xffffffffffff8000ull);
    EXPECT_EQ(sext(5, 64), 5u);
    EXPECT_EQ(zext(0xffffffffffffff80ull, 8), 0x80u);
    EXPECT_EQ(zext(~uint64_t{0}, 32), 0xffffffffull);
}

TEST(BitUtil, Rotates)
{
    EXPECT_EQ(rotl32(0x80000001u, 1), 0x00000003u);
    EXPECT_EQ(rotr32(0x00000003u, 1), 0x80000001u);
    EXPECT_EQ(rotl32(0x12345678u, 0), 0x12345678u);
    EXPECT_EQ(rotl64(uint64_t{1} << 63, 1), 1u);
    EXPECT_EQ(rotr64(1, 1), uint64_t{1} << 63);
}

TEST(BitUtil, Counts)
{
    EXPECT_EQ(clz(0, 32), 32u);
    EXPECT_EQ(clz(1, 32), 31u);
    EXPECT_EQ(clz(0x80000000u, 32), 0u);
    EXPECT_EQ(clz(1, 64), 63u);
    EXPECT_EQ(ctz(0, 64), 64u);
    EXPECT_EQ(ctz(8, 64), 3u);
    EXPECT_EQ(popcount(0xffu), 8u);
    EXPECT_EQ(popcount(0), 0u);
}

TEST(BitUtil, CarryOut)
{
    EXPECT_EQ(carryOut(0xffffffffu, 1, 0, 32), 1u);
    EXPECT_EQ(carryOut(0xfffffffeu, 1, 0, 32), 0u);
    EXPECT_EQ(carryOut(0xfffffffeu, 1, 1, 32), 1u);
    EXPECT_EQ(carryOut(~uint64_t{0}, 1, 0, 64), 1u);
    EXPECT_EQ(carryOut(~uint64_t{0}, 0, 1, 64), 1u);
    EXPECT_EQ(carryOut(1, 2, 0, 64), 0u);
    // Subtraction borrow convention: a - b == a + ~b + 1; carry means
    // no borrow.
    EXPECT_EQ(carryOut(5, ~uint64_t{3}, 1, 64), 1u); // 5 >= 3
    EXPECT_EQ(carryOut(3, ~uint64_t{5}, 1, 64), 0u); // 3 < 5
}

TEST(BitUtil, OverflowAdd)
{
    EXPECT_EQ(overflowAdd(0x7fffffffu, 1, 0, 32), 1u);
    EXPECT_EQ(overflowAdd(0x80000000u, 0xffffffffu, 0, 32), 1u);
    EXPECT_EQ(overflowAdd(1, 1, 0, 32), 0u);
    EXPECT_EQ(overflowAdd(0x7fffffffffffffffull, 1, 0, 64), 1u);
}

TEST(BitUtil, Alignment)
{
    EXPECT_TRUE(isAligned(0, 8));
    EXPECT_TRUE(isAligned(64, 8));
    EXPECT_FALSE(isAligned(4, 8));
    EXPECT_TRUE(isAligned(4, 4));
}

class SextRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SextRoundTrip, SextThenZextRecoversLowBits)
{
    unsigned n = GetParam();
    for (uint64_t v :
         {uint64_t{0}, uint64_t{1}, lowMask(n), lowMask(n) >> 1,
          uint64_t{1} << (n - 1)}) {
        EXPECT_EQ(zext(sext(v, n), n), v & lowMask(n)) << n << " " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SextRoundTrip,
                         ::testing::Values(1u, 8u, 13u, 16u, 21u, 32u,
                                           48u, 63u, 64u));

} // namespace
} // namespace onespec
