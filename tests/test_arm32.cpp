/**
 * @file
 * Instruction-level semantics tests for the arm32 description:
 * conditional execution, the barrel shifter, flag setting, multiplies,
 * and addressing modes.
 */

#include <gtest/gtest.h>

#include "adl/encode.hpp"
#include "isa/isa.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"

namespace onespec {
namespace {

constexpr uint32_t kN = 1u << 31;
constexpr uint32_t kZ = 1u << 30;
constexpr uint32_t kC = 1u << 29;
constexpr uint32_t kV = 1u << 28;

class Arm32Test : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { spec_ = loadIsa("arm32").release(); }
    static void TearDownTestSuite()
    {
        delete spec_;
        spec_ = nullptr;
    }

    void
    SetUp() override
    {
        ctx_ = std::make_unique<SimContext>(*spec_);
        cpsrIdx_ = spec_->state.scalarIndex("CPSR");
        ASSERT_GE(cpsrIdx_, 0);
    }

    /**
     * Run the single instruction @p w against the current context state
     * (registers and memory set by the test are preserved).
     */
    RunStatus
    run1(uint32_t w)
    {
        FaultKind f = FaultKind::None;
        ctx_->mem().write(0x8000, w, 4, f);
        ctx_->state().setPc(0x8000);
        auto sim = makeInterpSimulator(*ctx_, "OneAllNo");
        lastDi_ = DynInst{};
        return sim->execute(lastDi_);
    }

    uint32_t reg(unsigned i) const
    {
        return static_cast<uint32_t>(ctx_->state().readReg(0, i));
    }

    void setReg(unsigned i, uint32_t v) { ctx_->state().writeReg(0, i, v); }

    uint32_t cpsr() const
    {
        return static_cast<uint32_t>(
            ctx_->state().readScalar(cpsrIdx_));
    }

    void setCpsr(uint32_t v) { ctx_->state().writeScalar(cpsrIdx_, v); }

    uint32_t
    dp(const char *op, unsigned rd, unsigned rn, unsigned rm,
       unsigned shimm = 0, unsigned shtype = 0, unsigned sflag = 0,
       unsigned cond = 14)
    {
        return mustEncode(*spec_, op,
                          {{"cond", cond},
                           {"sflag", sflag},
                           {"rn", rn},
                           {"rd", rd},
                           {"shimm", shimm},
                           {"shtype", shtype},
                           {"rm", rm}});
    }

    static Spec *spec_;
    std::unique_ptr<SimContext> ctx_;
    DynInst lastDi_;
    int cpsrIdx_ = -1;
};

Spec *Arm32Test::spec_ = nullptr;

TEST_F(Arm32Test, DescriptionLoads)
{
    EXPECT_EQ(spec_->props.name, "arm32");
    EXPECT_EQ(spec_->props.wordBits, 32u);
    EXPECT_GE(spec_->instrs.size(), 50u);
}

TEST_F(Arm32Test, AddRegister)
{
    setReg(1, 5);
    setReg(2, 7);
    EXPECT_EQ(run1(dp("add_r", 0, 1, 2)), RunStatus::Ok);
    EXPECT_EQ(reg(0), 12u);
    EXPECT_EQ(cpsr(), 0u); // S clear: flags untouched
}

TEST_F(Arm32Test, AddImmediateRotated)
{
    // mov r0, #0xff000000  (imm8=0xff ror 8 -> rot=4)
    uint32_t w = mustEncode(*spec_, "mov_i",
                            {{"cond", 14},
                             {"sflag", 0},
                             {"rn", 0},
                             {"rd", 0},
                             {"rot", 4},
                             {"imm8", 0xff}});
    EXPECT_EQ(run1(w), RunStatus::Ok);
    EXPECT_EQ(reg(0), 0xff000000u);
}

TEST_F(Arm32Test, SubSetsCarryAsNotBorrow)
{
    setReg(1, 5);
    setReg(2, 3);
    run1(dp("sub_r", 0, 1, 2, 0, 0, 1));
    EXPECT_EQ(reg(0), 2u);
    EXPECT_TRUE(cpsr() & kC);  // no borrow
    EXPECT_FALSE(cpsr() & kN);
    EXPECT_FALSE(cpsr() & kZ);

    setReg(1, 3);
    setReg(2, 5);
    run1(dp("sub_r", 0, 1, 2, 0, 0, 1));
    EXPECT_EQ(reg(0), static_cast<uint32_t>(-2));
    EXPECT_FALSE(cpsr() & kC); // borrow
    EXPECT_TRUE(cpsr() & kN);
}

TEST_F(Arm32Test, AddsOverflowAndZeroFlags)
{
    setReg(1, 0x7fffffff);
    setReg(2, 1);
    run1(dp("add_r", 0, 1, 2, 0, 0, 1));
    EXPECT_TRUE(cpsr() & kV);
    EXPECT_TRUE(cpsr() & kN);

    setReg(1, 0);
    setReg(2, 0);
    run1(dp("add_r", 0, 1, 2, 0, 0, 1));
    EXPECT_TRUE(cpsr() & kZ);
}

TEST_F(Arm32Test, AdcUsesCarryIn)
{
    setCpsr(kC);
    setReg(1, 1);
    setReg(2, 2);
    run1(dp("adc_r", 0, 1, 2));
    EXPECT_EQ(reg(0), 4u);
}

TEST_F(Arm32Test, SbcSubtractsNotCarry)
{
    setCpsr(0); // carry clear: extra -1
    setReg(1, 10);
    setReg(2, 3);
    run1(dp("sbc_r", 0, 1, 2));
    EXPECT_EQ(reg(0), 6u);
    setCpsr(kC);
    run1(dp("sbc_r", 0, 1, 2));
    EXPECT_EQ(reg(0), 7u);
}

TEST_F(Arm32Test, ShifterLslWithCarryOut)
{
    setReg(1, 0);
    setReg(2, 0x80000001);
    // movs r0, r2, lsl #1
    run1(dp("mov_r", 0, 0, 2, 1, 0, 1));
    EXPECT_EQ(reg(0), 2u);
    EXPECT_TRUE(cpsr() & kC); // bit 31 shifted out
}

TEST_F(Arm32Test, ShifterLsrZeroMeansThirtyTwo)
{
    setReg(2, 0x80000000);
    run1(dp("mov_r", 0, 0, 2, 0, 1, 1)); // LSR #32
    EXPECT_EQ(reg(0), 0u);
    EXPECT_TRUE(cpsr() & kC); // bit 31 out
    EXPECT_TRUE(cpsr() & kZ);
}

TEST_F(Arm32Test, ShifterAsrAndRor)
{
    setReg(2, 0x80000000);
    run1(dp("mov_r", 0, 0, 2, 4, 2)); // ASR #4
    EXPECT_EQ(reg(0), 0xf8000000u);
    setReg(2, 0x0000000f);
    run1(dp("mov_r", 0, 0, 2, 4, 3)); // ROR #4
    EXPECT_EQ(reg(0), 0xf0000000u);
}

TEST_F(Arm32Test, ShifterRrxUsesCarry)
{
    setCpsr(kC);
    setReg(2, 2);
    run1(dp("mov_r", 0, 0, 2, 0, 3)); // ROR #0 == RRX
    EXPECT_EQ(reg(0), 0x80000001u);
}

TEST_F(Arm32Test, ConditionalExecutionSkipsWhenFalse)
{
    setCpsr(0); // Z clear
    setReg(0, 111);
    setReg(1, 1);
    setReg(2, 2);
    // addeq r0, r1, r2 -- must not execute
    run1(dp("add_r", 0, 1, 2, 0, 0, 0, /*cond=*/0));
    EXPECT_EQ(reg(0), 111u);

    setCpsr(kZ);
    run1(dp("add_r", 0, 1, 2, 0, 0, 0, /*cond=*/0));
    EXPECT_EQ(reg(0), 3u);
}

TEST_F(Arm32Test, ConditionCodesMatrix)
{
    struct CondCase
    {
        unsigned cond;
        uint32_t cpsr;
        bool should;
    };
    const CondCase cases[] = {
        {0, kZ, true},   {0, 0, false},      // EQ
        {1, 0, true},    {1, kZ, false},     // NE
        {2, kC, true},   {3, kC, false},     // CS / CC
        {4, kN, true},   {5, kN, false},     // MI / PL
        {6, kV, true},   {7, 0, true},       // VS / VC
        {8, kC, true},   {8, kC | kZ, false},// HI
        {9, kZ, true},   {9, kC, false},     // LS
        {10, kN | kV, true}, {10, kN, false},// GE
        {11, kN, true},  {11, kN | kV, false},// LT
        {12, 0, true},   {12, kZ, false},    // GT
        {13, kZ, true},  {13, 0, false},     // LE
        {14, 0, true},                       // AL
    };
    for (const auto &c : cases) {
        setCpsr(c.cpsr);
        setReg(0, 99);
        setReg(1, 1);
        setReg(2, 1);
        run1(dp("add_r", 0, 1, 2, 0, 0, 0, c.cond));
        EXPECT_EQ(reg(0), c.should ? 2u : 99u)
            << "cond=" << c.cond << " cpsr=" << std::hex << c.cpsr;
    }
}

TEST_F(Arm32Test, CmpAndBranchFlow)
{
    setReg(1, 5);
    setReg(2, 5);
    run1(dp("cmp_r", 0, 1, 2, 0, 0, 1));
    EXPECT_TRUE(cpsr() & kZ);
    // beq +2 (target = pc + 8 + 8)
    uint32_t b = mustEncode(*spec_, "b",
                            {{"cond", 0}, {"off24", 2}});
    EXPECT_EQ(run1(b), RunStatus::Ok);
    EXPECT_TRUE(lastDi_.branchTaken());
    EXPECT_EQ(ctx_->state().pc(), 0x8000u + 8 + 8);
}

TEST_F(Arm32Test, BranchBackwardDisplacement)
{
    uint32_t b = mustEncode(*spec_, "b",
                            {{"cond", 14},
                             {"off24", (1u << 24) - 4}}); // -4 words
    run1(b);
    EXPECT_EQ(ctx_->state().pc(), 0x8000u + 8 - 16);
}

TEST_F(Arm32Test, BranchAndLinkWritesR14)
{
    uint32_t bl = mustEncode(*spec_, "bl",
                             {{"cond", 14}, {"off24", 1}});
    run1(bl);
    EXPECT_EQ(reg(14), 0x8004u);
    EXPECT_EQ(ctx_->state().pc(), 0x8000u + 8 + 4);
}

TEST_F(Arm32Test, BxClearsThumbBit)
{
    setReg(3, 0x9001);
    uint32_t bx = mustEncode(*spec_, "bx", {{"cond", 14}, {"rm", 3}});
    run1(bx);
    EXPECT_EQ(ctx_->state().pc(), 0x9000u);
}

TEST_F(Arm32Test, MulAndMla)
{
    setReg(1, 7);
    setReg(2, 6);
    setReg(3, 100);
    uint32_t mul = mustEncode(*spec_, "mul",
                              {{"cond", 14},
                               {"sflag", 0},
                               {"rd", 0},
                               {"rn", 0},
                               {"rs", 2},
                               {"rm", 1}});
    run1(mul);
    EXPECT_EQ(reg(0), 42u);
    uint32_t mla = mustEncode(*spec_, "mla",
                              {{"cond", 14},
                               {"sflag", 0},
                               {"rd", 0},
                               {"rn", 3},
                               {"rs", 2},
                               {"rm", 1}});
    run1(mla);
    EXPECT_EQ(reg(0), 142u);
}

TEST_F(Arm32Test, LongMultiplies)
{
    setReg(1, 0xffffffff);
    setReg(2, 0xffffffff);
    uint32_t umull = mustEncode(*spec_, "umull",
                                {{"cond", 14},
                                 {"sflag", 0},
                                 {"rdhi", 4},
                                 {"rdlo", 3},
                                 {"rs", 2},
                                 {"rm", 1}});
    run1(umull);
    // 0xffffffff^2 = 0xfffffffe00000001
    EXPECT_EQ(reg(4), 0xfffffffeu);
    EXPECT_EQ(reg(3), 0x00000001u);

    uint32_t smull = mustEncode(*spec_, "smull",
                                {{"cond", 14},
                                 {"sflag", 0},
                                 {"rdhi", 4},
                                 {"rdlo", 3},
                                 {"rs", 2},
                                 {"rm", 1}});
    run1(smull);
    // (-1) * (-1) = 1
    EXPECT_EQ(reg(4), 0u);
    EXPECT_EQ(reg(3), 1u);
}

TEST_F(Arm32Test, LoadStoreOffsets)
{
    FaultKind f = FaultKind::None;
    ctx_->mem().write(0x20010, 0xcafebabe, 4, f);
    setReg(1, 0x20000);
    uint32_t ldr = mustEncode(*spec_, "ldr",
                              {{"cond", 14},
                               {"pbit", 1},
                               {"ubit", 1},
                               {"wbit", 0},
                               {"rn", 1},
                               {"rd", 0},
                               {"off12", 0x10}});
    run1(ldr);
    EXPECT_EQ(reg(0), 0xcafebabeu);

    // Negative offset (ubit=0).
    setReg(1, 0x20020);
    uint32_t ldr2 = mustEncode(*spec_, "ldr",
                               {{"cond", 14},
                                {"pbit", 1},
                                {"ubit", 0},
                                {"wbit", 0},
                                {"rn", 1},
                                {"rd", 2},
                                {"off12", 0x10}});
    run1(ldr2);
    EXPECT_EQ(reg(2), 0xcafebabeu);
}

TEST_F(Arm32Test, PreIndexWritebackAndPostIndex)
{
    FaultKind f = FaultKind::None;
    ctx_->mem().write(0x20010, 0x11, 4, f);
    ctx_->mem().write(0x20000, 0x22, 4, f);

    // Pre-indexed with writeback: ldr r0, [r1, #0x10]!
    setReg(1, 0x20000);
    run1(mustEncode(*spec_, "ldr",
                    {{"cond", 14},
                     {"pbit", 1},
                     {"ubit", 1},
                     {"wbit", 1},
                     {"rn", 1},
                     {"rd", 0},
                     {"off12", 0x10}}));
    EXPECT_EQ(reg(0), 0x11u);
    EXPECT_EQ(reg(1), 0x20010u);

    // Post-indexed: ldr r0, [r1], #0x10
    setReg(1, 0x20000);
    run1(mustEncode(*spec_, "ldr",
                    {{"cond", 14},
                     {"pbit", 0},
                     {"ubit", 1},
                     {"wbit", 0},
                     {"rn", 1},
                     {"rd", 0},
                     {"off12", 0x10}}));
    EXPECT_EQ(reg(0), 0x22u); // accessed at rn, then rn updated
    EXPECT_EQ(reg(1), 0x20010u);
}

TEST_F(Arm32Test, HalfwordAndSignedLoads)
{
    FaultKind f = FaultKind::None;
    ctx_->mem().write(0x20000, 0x8081, 2, f);
    setReg(1, 0x20000);
    auto mls = [&](const char *op, unsigned rd) {
        return mustEncode(*spec_, op,
                          {{"cond", 14},
                           {"ubit", 1},
                           {"rn", 1},
                           {"rd", rd},
                           {"immhi", 0},
                           {"immlo", 0}});
    };
    run1(mls("ldrh", 0));
    EXPECT_EQ(reg(0), 0x8081u);
    run1(mls("ldrsh", 2));
    EXPECT_EQ(reg(2), 0xffff8081u);
    run1(mls("ldrsb", 3));
    EXPECT_EQ(reg(3), 0xffffff81u);
}

TEST_F(Arm32Test, ClzMrsMsr)
{
    setReg(1, 0x00010000);
    run1(mustEncode(*spec_, "clz", {{"cond", 14}, {"rd", 0}, {"rm", 1}}));
    EXPECT_EQ(reg(0), 15u);

    setCpsr(kN | kC);
    run1(mustEncode(*spec_, "mrs", {{"cond", 14}, {"rd", 2}}));
    EXPECT_EQ(reg(2), kN | kC);

    setReg(3, kZ | 0x1234); // only flag bits transfer
    run1(mustEncode(*spec_, "msr", {{"cond", 14}, {"rm", 3}}));
    EXPECT_EQ(cpsr() & 0xf0000000, kZ);
}

TEST_F(Arm32Test, ShifterOutIsVisibleInterfaceInformation)
{
    // The paper's ARM example: the shifter output is intermediate
    // information a timing simulator may want.
    setReg(1, 1);
    setReg(2, 0x10);
    run1(dp("add_r", 0, 1, 2, 4, 0)); // r2 lsl #4 = 0x100
    int slot = spec_->findSlot("shifter_out");
    ASSERT_GE(slot, 0);
    EXPECT_TRUE(lastDi_.slotWritten(slot));
    EXPECT_EQ(lastDi_.vals[slot], 0x100u);
}

} // namespace
} // namespace onespec
