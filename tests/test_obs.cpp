/**
 * @file
 * Observability tests: flight-recorder ring semantics, the
 * zero-allocation disarmed fast path, fleet stats invariance with the
 * recorder compiled in (disarmed AND armed, 1 and N threads), the
 * interp-vs-generated hot-PC profiler identity, quarantine postmortem
 * tails, and timeline-export JSON sanity.  The concurrency-facing cases
 * carry the `tsan` label (docs/BENCHMARKING.md).
 */

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>

#include <gtest/gtest.h>

#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/pc_profile.hpp"
#include "obs/timeline.hpp"
#include "parallel/fleet.hpp"
#include "sim/interp.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

// ---------------------------------------------------------------------
// Global allocation counter.  Every allocation in the process funnels
// through these overrides, so "the disarmed macro allocates nothing"
// is checked against the real allocator, not a proxy.
// ---------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    size_t a = static_cast<size_t>(al);
    void *p = nullptr;
    if (posix_memalign(&p, a < sizeof(void *) ? sizeof(void *) : a,
                       n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return ::operator new(n, al);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace onespec {
namespace {

using obs::EvPhase;
using obs::EvType;
using obs::FlightControl;
using obs::FlightRecorder;
using obs::FrEvent;
using parallel::FleetJob;
using parallel::FleetReport;
using parallel::SimFleet;

// ---------------------------------------------------------------------
// Ring semantics
// ---------------------------------------------------------------------

TEST(FlightRecorderRing, BoundedOverwriteKeepsNewestInOrder)
{
    FlightRecorder rec(0, 8);
    for (uint64_t i = 0; i < 20; ++i)
        rec.record(EvType::Syscall, EvPhase::Instant, 7, i, i * 2, 100 + i);

    EXPECT_EQ(rec.capacity(), 8u);
    EXPECT_EQ(rec.totalRecorded(), 20u);
    EXPECT_EQ(rec.dropped(), 12u);

    std::vector<FrEvent> snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    for (size_t k = 0; k < snap.size(); ++k) {
        EXPECT_EQ(snap[k].a0, 12 + k) << "oldest-first order broke at " << k;
        EXPECT_EQ(snap[k].tsNs, 100 + 12 + k);
        EXPECT_EQ(snap[k].id, 7u);
    }

    std::vector<FrEvent> t = rec.tail(3);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].a0, 17u);
    EXPECT_EQ(t[2].a0, 19u);

    // Asking for more than is held returns everything held.
    EXPECT_EQ(rec.tail(100).size(), 8u);
}

TEST(FlightRecorderRing, PartialFillSnapshotsOnlyWhatWasRecorded)
{
    FlightRecorder rec(0, 16);
    rec.record(EvType::Job, EvPhase::Begin, 3, 1, 0, 5);
    rec.record(EvType::Job, EvPhase::End, 3, 1, 42, 9);
    EXPECT_EQ(rec.dropped(), 0u);
    std::vector<FrEvent> snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].phase, EvPhase::Begin);
    EXPECT_EQ(snap[1].phase, EvPhase::End);
    EXPECT_EQ(snap[1].a1, 42u);
}

TEST(FlightRecorderRing, EventTypeNamesAndCategoriesCovered)
{
    for (EvType t : {EvType::Job, EvType::Backoff, EvType::CkptCapture,
                     EvType::CkptRestore, EvType::Retry, EvType::Quarantine,
                     EvType::Deadline, EvType::Syscall, EvType::Fault,
                     EvType::CrossBatch, EvType::Submit, EvType::QueueWait,
                     EvType::Stream, EvType::Warm, EvType::Sample}) {
        EXPECT_STRNE(obs::evTypeName(t), "?");
        EXPECT_STRNE(obs::evCategory(t), "?");
    }
}

// ---------------------------------------------------------------------
// Metrics ring + OpenMetrics rendering
// ---------------------------------------------------------------------

TEST(MetricsRing, DeltasEvictionAndMonotoneRender)
{
    obs::MetricsRing ring(2);
    EXPECT_EQ(ring.capacity(), 2u);

    auto push = [&ring](uint64_t at, uint64_t done, int64_t depth) {
        std::vector<obs::MetricPoint> counters = {
            {"onespec_jobs_completed_total", "", done},
            {"onespec_jobs_rejected_total",
             obs::metricLabel("reason", "queue_full"), 0},
        };
        ring.push(at, std::move(counters), {{"onespec_queue_depth",
                                             depth}});
    };
    push(1, 10, 3);
    push(2, 25, 2);
    push(3, 60, 0);

    // Capacity 2: sample 1 was evicted but stays counted in taken().
    EXPECT_EQ(ring.taken(), 3u);
    std::vector<obs::MetricsSample> snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].seq, 2u);
    EXPECT_EQ(snap[1].seq, 3u);
    // Deltas are against the previous push, including the evicted one.
    EXPECT_EQ(snap[0].deltas[0].value, 15u);
    EXPECT_EQ(snap[1].deltas[0].value, 35u);

    std::string text = obs::renderOpenMetrics(ring);
    // Counters render the newest cumulative values; the delta ring only
    // covers unlabelled families; the document is terminated.
    EXPECT_NE(text.find("# TYPE onespec_jobs_completed_total counter\n"
                        "onespec_jobs_completed_total 60\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("onespec_jobs_rejected_total"
                        "{reason=\"queue_full\"} 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("onespec_jobs_completed_delta"
                        "{sample=\"3\"} 35\n"),
              std::string::npos);
    EXPECT_EQ(text.find("onespec_jobs_rejected_delta"),
              std::string::npos);
    EXPECT_NE(text.find("onespec_queue_depth 0\n"), std::string::npos);
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

    // Label escaping: backslash, quote, newline.
    EXPECT_EQ(obs::metricLabel("tenant", "a\"b\\c\nd"),
              "tenant=\"a\\\"b\\\\c\\nd\"");
}

TEST(MetricsRing, EmptyRingStillRendersValidExposition)
{
    obs::MetricsRing ring(4);
    std::string text = obs::renderOpenMetrics(ring);
    EXPECT_NE(text.find("onespec_metrics_samples_total 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("onespec_metrics_ring_capacity 4\n"),
              std::string::npos);
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

// ---------------------------------------------------------------------
// Disarmed fast path
// ---------------------------------------------------------------------

TEST(FlightRecorderFastPath, DisarmedMacroNeverAllocates)
{
    FlightControl &fc = FlightControl::instance();
    fc.disarm();

    uint64_t before = g_allocCount.load();
    for (uint64_t i = 0; i < 1'000'000; ++i)
        ONESPEC_FR_INSTANT(EvType::Syscall, 0, i, i);
    uint64_t after = g_allocCount.load();
    EXPECT_EQ(after - before, 0u)
        << "disarmed recording site allocated memory";
}

TEST(FlightRecorderFastPath, ArmedSteadyStateNeverAllocates)
{
    FlightControl &fc = FlightControl::instance();
    fc.arm(1024);
    // First event registers this thread's ring (allocates, once).
    ONESPEC_FR_INSTANT(EvType::Syscall, 0, 0, 0);

    uint64_t before = g_allocCount.load();
    for (uint64_t i = 0; i < 100'000; ++i)
        ONESPEC_FR_INSTANT(EvType::Syscall, 0, i, i);
    uint64_t after = g_allocCount.load();
    EXPECT_EQ(after - before, 0u)
        << "armed steady-state recording allocated memory";
    EXPECT_EQ(fc.local().dropped(),
              fc.local().totalRecorded() - fc.local().capacity());
    fc.disarm();
}

TEST(FlightRecorderFastPath, SpanClosesOnExceptionUnwind)
{
    FlightControl &fc = FlightControl::instance();
    fc.arm(64);
    try {
        obs::FrSpan span(EvType::CkptRestore, 9, 5, 0);
        throw std::runtime_error("mid-span");
    } catch (const std::runtime_error &) {
    }
    std::vector<FrEvent> snap = fc.local().snapshot();
    fc.disarm();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].phase, EvPhase::Begin);
    EXPECT_EQ(snap[1].phase, EvPhase::End);
    EXPECT_EQ(snap[1].id, 9u);
    EXPECT_LE(snap[0].tsNs, snap[1].tsNs);
}

// ---------------------------------------------------------------------
// Fleet-facing behavior
// ---------------------------------------------------------------------

class ObsFleetTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        spec_ = loadIsa("alpha64").release();
        programs_ = new std::vector<std::pair<std::string, Program>>();
        for (const char *k : {"fib", "crc32"}) {
            auto builder = makeBuilder(*spec_);
            programs_->emplace_back(k, buildKernel(*builder, k, 500));
        }
    }

    static void
    TearDownTestSuite()
    {
        delete programs_;
        programs_ = nullptr;
        delete spec_;
        spec_ = nullptr;
    }

    static std::vector<FleetJob>
    makeJobs(int copies = 1)
    {
        std::vector<FleetJob> jobs;
        for (int c = 0; c < copies; ++c) {
            for (const auto &[kname, prog] : *programs_) {
                FleetJob j;
                j.spec = spec_;
                j.program = &prog;
                j.buildset = "BlockMinNo";
                j.name = std::string("alpha64/") + kname;
                jobs.push_back(std::move(j));
            }
        }
        return jobs;
    }

    static std::string
    mergedDump(const FleetReport &rep)
    {
        std::ostringstream os;
        rep.merged->dump(os);
        return os.str();
    }

    static Spec *spec_;
    static std::vector<std::pair<std::string, Program>> *programs_;
};

Spec *ObsFleetTest::spec_ = nullptr;
std::vector<std::pair<std::string, Program>> *ObsFleetTest::programs_ =
    nullptr;

TEST_F(ObsFleetTest, MergedStatsIdenticalAcrossThreadsAndArming)
{
    std::vector<FleetJob> jobs = makeJobs(3);
    FlightControl &fc = FlightControl::instance();

    fc.disarm();
    SimFleet one(1);
    std::string ref = mergedDump(one.run(jobs));

    SimFleet four(4);
    EXPECT_EQ(mergedDump(four.run(jobs)), ref)
        << "disarmed recorder changed N-thread merged stats";

    fc.arm(256);
    EXPECT_EQ(mergedDump(four.run(jobs)), ref)
        << "armed recorder leaked into the merged stats";
    fc.disarm();
}

TEST_F(ObsFleetTest, QuarantinedJobCarriesFlightRecorderTail)
{
    std::vector<FleetJob> jobs = makeJobs();
    jobs[0].buildset = "__no_such_buildset__";
    parallel::FleetPolicy pol;
    pol.keepGoing = true;

    FlightControl &fc = FlightControl::instance();
    fc.arm(256);
    SimFleet fleet(2);
    FleetReport rep = fleet.run(jobs, pol);
    fc.disarm();

    ASSERT_TRUE(rep.results[0].quarantined);
    ASSERT_FALSE(rep.results[0].frTail.empty())
        << "quarantine postmortem tail is empty";
    bool saw_quarantine = false;
    for (const FrEvent &ev : rep.results[0].frTail)
        saw_quarantine |= ev.type == EvType::Quarantine;
    EXPECT_TRUE(saw_quarantine)
        << "tail does not include the quarantine instant";

    // Healthy jobs never pay for the postmortem.
    for (size_t j = 1; j < jobs.size(); ++j)
        EXPECT_TRUE(rep.results[j].frTail.empty()) << jobs[j].name;
}

TEST_F(ObsFleetTest, DisarmedRunLeavesTailEmpty)
{
    std::vector<FleetJob> jobs = makeJobs();
    jobs[0].buildset = "__no_such_buildset__";
    parallel::FleetPolicy pol;
    pol.keepGoing = true;

    FlightControl::instance().disarm();
    SimFleet fleet(2);
    FleetReport rep = fleet.run(jobs, pol);
    ASSERT_TRUE(rep.results[0].quarantined);
    EXPECT_TRUE(rep.results[0].frTail.empty());
}

TEST_F(ObsFleetTest, TimelineExportIsWellFormedChromeTrace)
{
    std::vector<FleetJob> jobs = makeJobs();
    FlightControl &fc = FlightControl::instance();
    fc.arm(1024);
    SimFleet fleet(2);
    fleet.run(jobs);
    fc.disarm();

    obs::TimelineLabels labels;
    for (const auto &j : jobs)
        labels.jobNames.push_back(j.name);
    stats::Json doc = obs::buildChromeTrace(labels);

    ASSERT_TRUE(doc.isObject());
    const stats::Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->size(), 0u);

    size_t begins = 0, ends = 0, metas = 0;
    for (size_t i = 0; i < events->size(); ++i) {
        const stats::Json &ev = events->at(i);
        ASSERT_TRUE(ev.isObject());
        ASSERT_TRUE(ev.has("name"));
        ASSERT_TRUE(ev.has("ph"));
        ASSERT_TRUE(ev.has("ts"));
        const std::string &ph = ev.find("ph")->asString();
        begins += ph == "B";
        ends += ph == "E";
        metas += ph == "M";
    }
    EXPECT_EQ(begins, ends) << "unmatched span pair survived export";
    EXPECT_GT(begins, 0u) << "no job spans in the timeline";
    EXPECT_GT(metas, 0u) << "no track-name metadata in the timeline";

    // The document must survive a serialize/parse round trip.
    stats::Json back;
    std::string err;
    ASSERT_TRUE(stats::Json::parse(doc.dump(2), back, &err)) << err;
    EXPECT_TRUE(back.isObject());
}

// ---------------------------------------------------------------------
// Hot-PC profiler
// ---------------------------------------------------------------------

TEST_F(ObsFleetTest, ProfilerIdenticalAcrossBackEnds)
{
    const Program &prog = (*programs_)[0].second;
    obs::PcProfiler::Config cfg;
    cfg.strideInstrs = 16;

    auto run = [&](bool interp) {
        SimContext ctx(*spec_);
        ctx.load(prog);
        auto sim = interp ? std::unique_ptr<FunctionalSimulator>(
                                makeInterpSimulator(ctx, "BlockMinNo"))
                          : SimRegistry::instance().create(ctx, "BlockMinNo");
        auto prof = std::make_unique<obs::PcProfiler>(*spec_, cfg);
        sim->setProfiler(prof.get());
        EXPECT_EQ(static_cast<int>(sim->run(~uint64_t{0}).status),
                  static_cast<int>(RunStatus::Halted));
        return prof;
    };

    auto pi = run(true);
    auto pg = run(false);

    EXPECT_GT(pg->samples(), 0u);
    EXPECT_EQ(pi->samples(), pg->samples());
    EXPECT_EQ(pi->buckets(), pg->buckets())
        << "PC histograms diverged between back ends";
    EXPECT_EQ(pi->opCounts(), pg->opCounts())
        << "action histograms diverged between back ends";

    uint64_t sum = 0;
    for (const auto &[pc, n] : pg->buckets())
        sum += n;
    EXPECT_EQ(sum, pg->samples()) << "bucket counts do not sum to samples";

    stats::StatsRegistry reg;
    pg->publish(reg.group("profile"));
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("profile.samples"), std::string::npos);
    EXPECT_NE(os.str().find("profile.pc.pc_"), std::string::npos);
}

TEST_F(ObsFleetTest, FleetJobProfileLandsInMergedStats)
{
    std::vector<FleetJob> jobs = makeJobs();
    for (auto &j : jobs)
        j.profileStride = 32;

    SimFleet one(1);
    std::string ref = mergedDump(one.run(jobs));
    EXPECT_NE(ref.find("profile.samples"), std::string::npos)
        << "fleet profile section missing from merged stats";

    SimFleet four(4);
    EXPECT_EQ(mergedDump(four.run(jobs)), ref)
        << "profiled merged stats depend on thread count";
}

TEST(PcProfiler, ResetForgetsEverything)
{
    auto spec = loadIsa("alpha64");
    obs::PcProfiler::Config cfg;
    cfg.strideInstrs = 2;
    obs::PcProfiler prof(*spec, cfg);
    for (int i = 0; i < 10; ++i)
        prof.tick(0x1000 + 4 * i, 0);
    EXPECT_GT(prof.samples(), 0u);
    prof.reset();
    EXPECT_EQ(prof.samples(), 0u);
    EXPECT_TRUE(prof.buckets().empty());
}

} // namespace
} // namespace onespec
