/**
 * @file
 * Smaller units: FieldView, SimContext program loading, diagnostics
 * formatting, DynInst helpers, and Spec lookup functions.
 */

#include <gtest/gtest.h>

#include "adl/encode.hpp"
#include "iface/fieldview.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "support/diag.hpp"
#include "testutil.hpp"

namespace onespec {
namespace {

TEST(FieldView, ResolvesAndGuardsSlots)
{
    auto spec = test::makeMiniSpec();
    FieldView fv(*spec);
    int ea = fv.handle("effective_addr");
    ASSERT_GE(ea, 0);
    EXPECT_EQ(fv.handle("nosuch"), -1);

    DynInst di;
    EXPECT_FALSE(fv.get(di, ea).has_value());
    EXPECT_FALSE(fv.get(di, -1).has_value());
    di.setVal(ea, 0x1234);
    ASSERT_TRUE(fv.get(di, ea).has_value());
    EXPECT_EQ(*fv.get(di, ea), 0x1234u);
    EXPECT_EQ(*fv.get(di, "effective_addr"), 0x1234u);
}

TEST(DynInstRecord, BeginInstrResetsHeaderNotSlots)
{
    DynInst di;
    di.setVal(3, 77);
    di.fault = FaultKind::Trap;
    di.flags = kFlagBranchTaken;
    di.nOps = 4;
    di.beginInstr(0x100, 0x104);
    EXPECT_EQ(di.pc, 0x100u);
    EXPECT_EQ(di.npc, 0x104u);
    EXPECT_EQ(di.written, 0u);
    EXPECT_EQ(di.fault, FaultKind::None);
    EXPECT_EQ(di.flags, 0);
    EXPECT_EQ(di.nOps, 0);
    // Value storage is deliberately left stale.
    EXPECT_EQ(di.vals[3], 77u);
    EXPECT_FALSE(di.slotWritten(3));
}

TEST(DynInstRecord, OpMetaHelpers)
{
    uint8_t m = makeOpMeta(true, 5);
    EXPECT_TRUE(opMetaIsDst(m));
    EXPECT_EQ(opMetaFile(m), 5u);
    uint8_t s = makeOpMeta(false, 0x41);
    EXPECT_FALSE(opMetaIsDst(s));
    EXPECT_EQ(opMetaFile(s), 0x41u);
}

TEST(Context, LoadInitializesStackPcBrkAndClearsState)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    ctx.state().writeReg(0, 1, 999);
    FaultKind f = FaultKind::None;
    ctx.mem().write(0x5000, 42, 8, f);

    Program p;
    p.entry = 0x2000;
    p.stackTop = 0x70000;
    Segment s;
    s.base = 0x2000;
    s.bytes = {1, 2, 3, 4};
    p.segments.push_back(s);
    ctx.load(p);

    EXPECT_EQ(ctx.state().pc(), 0x2000u);
    EXPECT_EQ(ctx.state().readReg(0, 1), 0u);       // cleared
    EXPECT_EQ(ctx.state().readReg(0, 6), 0x70000u); // abi stack reg
    EXPECT_EQ(ctx.mem().read(0x5000, 8, f), 0u);    // old memory gone
    EXPECT_EQ(ctx.mem().read(0x2000, 4, f), 0x04030201u);
    EXPECT_EQ(ctx.os().brk(), 0x2004u);             // auto break = highWater
}

TEST(Context, ExplicitInitialBrkWins)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    Program p;
    p.entry = 0x1000;
    p.initialBrk = 0x900000;
    ctx.load(p);
    EXPECT_EQ(ctx.os().brk(), 0x900000u);
}

TEST(Context, RetiredCounterAccumulates)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    Program p;
    p.entry = 0x1000;
    ctx.load(p);
    EXPECT_EQ(ctx.instrsRetired(), 0u);
    ctx.addRetired(5);
    ctx.addRetired(2);
    EXPECT_EQ(ctx.instrsRetired(), 7u);
    ctx.load(p);
    EXPECT_EQ(ctx.instrsRetired(), 0u);
}

TEST(Diagnostics, FormattingAndCounts)
{
    DiagnosticEngine d;
    EXPECT_FALSE(d.hasErrors());
    d.warning({"f.lis", 3, 7}, "suspicious");
    EXPECT_FALSE(d.hasErrors());
    d.error({"f.lis", 10, 1}, "broken");
    d.note({"f.lis", 10, 2}, "because");
    EXPECT_TRUE(d.hasErrors());
    EXPECT_EQ(d.errorCount(), 1);
    std::string s = d.str();
    EXPECT_NE(s.find("f.lis:3:7: warning: suspicious"), std::string::npos);
    EXPECT_NE(s.find("f.lis:10:1: error: broken"), std::string::npos);
    EXPECT_NE(s.find("note: because"), std::string::npos);
}

TEST(SpecLookup, FindersBehave)
{
    auto spec = test::makeMiniSpec();
    EXPECT_NE(spec->findBuildset("OneAllNo"), nullptr);
    EXPECT_EQ(spec->findBuildset("zzz"), nullptr);
    EXPECT_GE(spec->findSlot("alu_result"), 0);
    EXPECT_EQ(spec->findSlot("zzz"), -1);
    // Info-level masks are nested: min subset of decode subset of all.
    SlotMask dec = spec->slotsForInfoLevel(InfoLevel::Decode);
    SlotMask all = spec->slotsForInfoLevel(InfoLevel::All);
    EXPECT_EQ(dec & ~all, 0u);
    EXPECT_NE(dec, all);
}

TEST(SpecLookup, StateLayoutOffsetsAreDense)
{
    auto spec = test::makeMiniSpec();
    EXPECT_EQ(spec->state.files[0].base, 0u);
    EXPECT_EQ(spec->state.totalWords, 8u);
    EXPECT_EQ(spec->state.fileIndex("R"), 0);
    EXPECT_EQ(spec->state.fileIndex("Q"), -1);
    EXPECT_EQ(spec->state.scalarIndex("nope"), -1);
}

TEST(ArchStateOps, NormalizationAndZeroReg)
{
    auto spec = test::makeMiniSpec();
    ArchState st(spec->state);
    st.writeReg(0, 1, ~uint64_t{0});
    EXPECT_EQ(st.readReg(0, 1), ~uint64_t{0}); // u64 file
    st.writeReg(0, 7, 123);                    // zero register
    EXPECT_EQ(st.readReg(0, 7), 0u);
    ArchState other(spec->state);
    EXPECT_FALSE(st == other);
    st.reset();
    EXPECT_TRUE(st == other);
}

TEST(RunHelpers, RunStopsAtCap)
{
    auto spec = test::makeMiniSpec();
    SimContext ctx(*spec);
    // An infinite loop: br -1 (branch to itself).
    Program p;
    p.entry = 0x1000;
    Segment s;
    s.base = 0x1000;
    uint32_t w = mustEncode(*spec, "br",
                            {{"imm", 0xffff}}); // disp -1
    for (int i = 0; i < 4; ++i)
        s.bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    p.segments.push_back(std::move(s));
    ctx.load(p);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    RunResult rr = sim->run(1000);
    EXPECT_EQ(rr.status, RunStatus::Ok); // still running
    EXPECT_EQ(rr.instrs, 1000u);
}

} // namespace
} // namespace onespec
