/**
 * @file
 * Encoder tests, including the key derived-assembler property: for every
 * instruction of every shipped ISA, encoding (with randomized operand
 * fields) and then decoding returns the same instruction.  Because
 * encoder and decoder are two views of one specification, this property
 * is what guarantees the workload generator and the simulators agree.
 */

#include <random>

#include <gtest/gtest.h>

#include "adl/encode.hpp"
#include "isa/isa.hpp"
#include "support/bitutil.hpp"
#include "support/panic_exception.hpp"
#include "testutil.hpp"

namespace onespec {
namespace {

TEST(Encode, FieldsArePlacedAtTheirBitPositions)
{
    auto spec = test::makeMiniSpec();
    uint32_t w = mustEncode(*spec, "add",
                            {{"ra", 3}, {"rb", 5}, {"rc", 7}});
    EXPECT_EQ(bits(w, 31, 26), 1u);  // op
    EXPECT_EQ(bits(w, 25, 21), 3u);  // ra
    EXPECT_EQ(bits(w, 20, 16), 5u);  // rb
    EXPECT_EQ(bits(w, 15, 11), 7u);  // rc
}

TEST(Encode, UnknownFieldFails)
{
    auto spec = test::makeMiniSpec();
    uint32_t out;
    std::string err;
    EXPECT_FALSE(encodeInstr(*spec, spec->instrIndex.at("add"),
                             {{"nosuch", 1}}, out, err));
    EXPECT_NE(err.find("no field"), std::string::npos);
}

TEST(Encode, ValueTooWideFails)
{
    auto spec = test::makeMiniSpec();
    uint32_t out;
    std::string err;
    EXPECT_FALSE(encodeInstr(*spec, spec->instrIndex.at("add"),
                             {{"ra", 32}}, out, err));
    EXPECT_NE(err.find("does not fit"), std::string::npos);
}

TEST(Encode, ConflictWithMatchPatternFails)
{
    auto spec = test::makeMiniSpec();
    uint32_t out;
    std::string err;
    // `op` is fixed to 1 by add's match; writing 2 conflicts.
    EXPECT_FALSE(encodeInstr(*spec, spec->instrIndex.at("add"),
                             {{"op", 2}}, out, err));
}

TEST(Encode, MatchingFixedValueIsAllowed)
{
    auto spec = test::makeMiniSpec();
    uint32_t out;
    std::string err;
    EXPECT_TRUE(encodeInstr(*spec, spec->instrIndex.at("add"),
                            {{"op", 1}, {"ra", 2}}, out, err))
        << err;
}

TEST(Encode, UnknownInstructionPanics)
{
    auto spec = test::makeMiniSpec();
    ScopedThrowOnPanic guard;
    EXPECT_THROW(mustEncode(*spec, "nosuch", {}), PanicException);
}

// ---------------------------------------------------------------------
// Property: encode(decode-pattern + random operands) decodes back to the
// same instruction, for every instruction of every shipped ISA.
// ---------------------------------------------------------------------

class EncodeDecodeRoundTrip
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EncodeDecodeRoundTrip, EveryInstructionSurvives)
{
    auto spec = loadIsa(GetParam());
    std::mt19937_64 rng(42);

    for (size_t id = 0; id < spec->instrs.size(); ++id) {
        const InstrInfo &ii = spec->instrs[id];
        const FormatDecl &fmt = spec->formats[ii.formatIndex];
        for (int trial = 0; trial < 16; ++trial) {
            // Randomize every non-fixed format field.
            std::vector<EncField> fields;
            for (const auto &ff : fmt.fields) {
                unsigned width = ff.hi - ff.lo + 1;
                uint32_t fmask = static_cast<uint32_t>(lowMask(width))
                                 << ff.lo;
                if (fmask & ii.fixedMask)
                    continue; // fixed by the match pattern
                fields.emplace_back(ff.name, rng() & lowMask(width));
            }
            uint32_t word;
            std::string err;
            ASSERT_TRUE(encodeInstr(*spec, static_cast<int>(id), fields,
                                    word, err))
                << ii.name << ": " << err;
            int back = spec->decode(word);
            ASSERT_GE(back, 0) << ii.name << " word=" << std::hex << word;
            // Random operand bits may accidentally form a *more specific*
            // sibling encoding (e.g. a literal-form vs register-form
            // distinction); the decoded instruction must at least carry
            // the same fixed pattern.
            const InstrInfo &bi = spec->instrs[back];
            EXPECT_EQ(word & ii.fixedMask, ii.fixedBits) << ii.name;
            EXPECT_EQ(word & bi.fixedMask, bi.fixedBits) << ii.name;
            if (static_cast<size_t>(back) != id) {
                // Only acceptable if the decoded instruction is more
                // specific (its mask covers ours).
                EXPECT_EQ(bi.fixedMask & ii.fixedMask, ii.fixedMask)
                    << ii.name << " decoded as " << bi.name;
            }
        }
        // The canonical encoding (all operand fields zero) must decode
        // to an instruction with the same fixed pattern.
        int canon = spec->decode(ii.fixedBits);
        ASSERT_GE(canon, 0) << ii.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, EncodeDecodeRoundTrip,
                         ::testing::ValuesIn(shippedIsas()),
                         [](const auto &info) { return info.param; });

class DecodeProperties : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DecodeProperties, RandomWordsDecodeConsistentlyWithLinearScan)
{
    // The decode tree must agree with a brute-force most-specific-first
    // linear scan on arbitrary words.
    auto spec = loadIsa(GetParam());
    std::mt19937_64 rng(7);

    auto linear = [&](uint32_t w) -> int {
        int best = -1;
        int best_bits = -1;
        for (size_t i = 0; i < spec->instrs.size(); ++i) {
            const InstrInfo &ii = spec->instrs[i];
            if ((w & ii.fixedMask) == ii.fixedBits) {
                int nb = __builtin_popcount(ii.fixedMask);
                if (nb > best_bits) {
                    best_bits = nb;
                    best = static_cast<int>(i);
                }
            }
        }
        return best;
    };

    for (int t = 0; t < 5000; ++t) {
        uint32_t w = static_cast<uint32_t>(rng());
        int a = spec->decode(w);
        int b = linear(w);
        if (b < 0) {
            EXPECT_LT(a, 0) << std::hex << w;
        } else {
            ASSERT_GE(a, 0) << std::hex << w;
            // Equal specificity may pick either; patterns must both
            // match.
            EXPECT_EQ(w & spec->instrs[a].fixedMask,
                      spec->instrs[a].fixedBits)
                << std::hex << w;
            EXPECT_EQ(__builtin_popcount(spec->instrs[a].fixedMask),
                      __builtin_popcount(spec->instrs[b].fixedMask))
                << std::hex << w << " tree=" << spec->instrs[a].name
                << " linear=" << spec->instrs[b].name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, DecodeProperties,
                         ::testing::ValuesIn(shippedIsas()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace onespec
