/**
 * @file
 * Instruction-level semantics tests for the alpha64 description.
 */

#include <gtest/gtest.h>

#include "adl/encode.hpp"
#include "isa/isa.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"

namespace onespec {
namespace {

class Alpha64Test : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { spec_ = loadIsa("alpha64").release(); }
    static void TearDownTestSuite()
    {
        delete spec_;
        spec_ = nullptr;
    }

    /**
     * Run one operate-style instruction with R1=a, R2=b, result in R3.
     */
    uint64_t
    runOp(const std::string &name, uint64_t a, uint64_t b,
          std::vector<EncField> extra = {})
    {
        std::vector<EncField> f = {{"ra", 1}, {"rb", 2}, {"rc", 3}};
        for (auto &e : extra)
            f.push_back(e);
        return runWith(mustEncode(*spec_, name, f), a, b);
    }

    /** Literal-form operate: R1=a, literal value, result in R3. */
    uint64_t
    runOpLit(const std::string &name, uint64_t a, uint64_t lit)
    {
        uint32_t w = mustEncode(*spec_, name,
                                {{"ra", 1}, {"lit", lit}, {"rc", 3}});
        return runWith(w, a, 0);
    }

    uint64_t
    runWith(uint32_t word, uint64_t r1, uint64_t r2)
    {
        SimContext ctx(*spec_);
        Program p;
        p.entry = 0x10000;
        Segment s;
        s.base = 0x10000;
        for (int i = 0; i < 4; ++i)
            s.bytes.push_back(static_cast<uint8_t>(word >> (8 * i)));
        p.segments.push_back(std::move(s));
        ctx.load(p);
        ctx.state().writeReg(0, 1, r1);
        ctx.state().writeReg(0, 2, r2);
        auto sim = makeInterpSimulator(ctx, "OneAllNo");
        DynInst di;
        EXPECT_EQ(sim->execute(di), RunStatus::Ok);
        lastDi_ = di;
        return ctx.state().readReg(0, 3);
    }

    static Spec *spec_;
    DynInst lastDi_;
};

Spec *Alpha64Test::spec_ = nullptr;

TEST_F(Alpha64Test, DescriptionLoads)
{
    EXPECT_EQ(spec_->props.name, "alpha64");
    EXPECT_GE(spec_->instrs.size(), 100u);
    EXPECT_GE(spec_->buildsets.size(), 12u);
    EXPECT_TRUE(spec_->props.littleEndian);
}

TEST_F(Alpha64Test, Arithmetic)
{
    EXPECT_EQ(runOp("addq", 5, 7), 12u);
    EXPECT_EQ(runOp("subq", 5, 7), static_cast<uint64_t>(-2));
    EXPECT_EQ(runOp("mulq", 1000000, 1000000), 1000000000000ull);
    EXPECT_EQ(runOp("addl", 0x7fffffff, 1),
              0xffffffff80000000ull); // 32-bit overflow sign-extends
    EXPECT_EQ(runOp("subl", 0, 1), ~uint64_t{0});
    EXPECT_EQ(runOp("s4addq", 3, 5), 17u);
    EXPECT_EQ(runOp("s8addq", 3, 5), 29u);
    EXPECT_EQ(runOp("s4subq", 3, 5), 7u);
    EXPECT_EQ(runOp("umulh", ~uint64_t{0}, 2), 1u);
    EXPECT_EQ(runOp("mull", 0x10000, 0x10000), 0u); // low 32 bits
}

TEST_F(Alpha64Test, LiteralForms)
{
    EXPECT_EQ(runOpLit("addq_l", 5, 200), 205u);
    EXPECT_EQ(runOpLit("subq_l", 5, 7), static_cast<uint64_t>(-2));
    EXPECT_EQ(runOpLit("and_l", 0xff, 0x0f), 0x0fu);
    EXPECT_EQ(runOpLit("sll_l", 1, 12), 4096u);
    EXPECT_EQ(runOpLit("sra_l", static_cast<uint64_t>(-8), 1),
              static_cast<uint64_t>(-4));
    EXPECT_EQ(runOpLit("cmplt_l", static_cast<uint64_t>(-1), 0), 1u);
    EXPECT_EQ(runOpLit("cmpult_l", static_cast<uint64_t>(-1), 0), 0u);
}

TEST_F(Alpha64Test, Comparisons)
{
    EXPECT_EQ(runOp("cmpeq", 4, 4), 1u);
    EXPECT_EQ(runOp("cmpeq", 4, 5), 0u);
    EXPECT_EQ(runOp("cmplt", static_cast<uint64_t>(-5), 3), 1u);
    EXPECT_EQ(runOp("cmplt", 3, static_cast<uint64_t>(-5)), 0u);
    EXPECT_EQ(runOp("cmpult", 3, static_cast<uint64_t>(-5)), 1u);
    EXPECT_EQ(runOp("cmpule", 3, 3), 1u);
    EXPECT_EQ(runOp("cmple", static_cast<uint64_t>(-1), 0), 1u);
}

TEST_F(Alpha64Test, Logical)
{
    EXPECT_EQ(runOp("and", 0xf0f0, 0xff00), 0xf000u);
    EXPECT_EQ(runOp("bis", 0xf0f0, 0x0f00), 0xfff0u);
    EXPECT_EQ(runOp("xor", 0xffff, 0x0ff0), 0xf00fu);
    EXPECT_EQ(runOp("bic", 0xffff, 0x0ff0), 0xf00fu);
    EXPECT_EQ(runOp("ornot", 0, 0), ~uint64_t{0});
    EXPECT_EQ(runOp("eqv", 0xff, 0xff), ~uint64_t{0});
}

TEST_F(Alpha64Test, ShiftsAndBytes)
{
    EXPECT_EQ(runOp("sll", 1, 63), uint64_t{1} << 63);
    EXPECT_EQ(runOp("srl", uint64_t{1} << 63, 63), 1u);
    EXPECT_EQ(runOp("sra", uint64_t{1} << 63, 63), ~uint64_t{0});
    EXPECT_EQ(runOp("extbl", 0x8877665544332211ull, 3), 0x44u);
    EXPECT_EQ(runOp("extwl", 0x8877665544332211ull, 2), 0x4433u);
    EXPECT_EQ(runOp("extll", 0x8877665544332211ull, 4), 0x88776655u);
    EXPECT_EQ(runOp("insbl", 0xab, 2), 0xab0000u);
    EXPECT_EQ(runOp("mskbl", 0xffffffffffffffffull, 1),
              0xffffffffffff00ffull);
    EXPECT_EQ(runOp("zapnot", 0x8877665544332211ull, 0x0f),
              0x44332211u);
    EXPECT_EQ(runOp("zap", 0x8877665544332211ull, 0x0f),
              0x8877665500000000ull);
    EXPECT_EQ(runOp("cmpbge", 0x0102030405060708ull,
                    0x0102030405060708ull),
              0xffu);
}

TEST_F(Alpha64Test, CountsAndSext)
{
    EXPECT_EQ(runOp("ctpop", 0, 0xff), 8u);
    EXPECT_EQ(runOp("ctlz", 0, 1), 63u);
    EXPECT_EQ(runOp("cttz", 0, uint64_t{1} << 10), 10u);
    EXPECT_EQ(runOp("sextb", 0, 0x80), 0xffffffffffffff80ull);
    EXPECT_EQ(runOp("sextw", 0, 0x8000), 0xffffffffffff8000ull);
}

TEST_F(Alpha64Test, ConditionalMoveLeavesDestOnFalse)
{
    // cmoveq with a!=0: R3 keeps its previous value (writeback skipped).
    SimContext ctx(*spec_);
    Program p;
    p.entry = 0x10000;
    uint32_t w = mustEncode(*spec_, "cmoveq",
                            {{"ra", 1}, {"rb", 2}, {"rc", 3}});
    Segment s;
    s.base = 0x10000;
    for (int i = 0; i < 4; ++i)
        s.bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    p.segments.push_back(std::move(s));
    ctx.load(p);
    ctx.state().writeReg(0, 1, 1);   // condition false
    ctx.state().writeReg(0, 2, 99);
    ctx.state().writeReg(0, 3, 1234);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    DynInst di;
    EXPECT_EQ(sim->execute(di), RunStatus::Ok);
    EXPECT_EQ(ctx.state().readReg(0, 3), 1234u);
}

TEST_F(Alpha64Test, MemoryAndDisplacement)
{
    SimContext ctx(*spec_);
    Program p;
    p.entry = 0x10000;
    Segment s;
    s.base = 0x10000;
    auto push = [&](uint32_t w) {
        for (int i = 0; i < 4; ++i)
            s.bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    };
    // stq R1 -> [R2 - 8]; ldq R3 <- [R2 - 8]; ldl R4 <- [R2 - 8]
    push(mustEncode(*spec_, "stq",
                    {{"ra", 1}, {"rb", 2}, {"disp", 0xfff8}}));
    push(mustEncode(*spec_, "ldq",
                    {{"ra", 3}, {"rb", 2}, {"disp", 0xfff8}}));
    push(mustEncode(*spec_, "ldl",
                    {{"ra", 4}, {"rb", 2}, {"disp", 0xfff8}}));
    push(mustEncode(*spec_, "ldbu",
                    {{"ra", 5}, {"rb", 2}, {"disp", 0xfff8}}));
    p.segments.push_back(std::move(s));
    ctx.load(p);
    ctx.state().writeReg(0, 1, 0xdeadbeefcafef00dull);
    ctx.state().writeReg(0, 2, 0x20008);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    DynInst di;
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(sim->execute(di), RunStatus::Ok);
    EXPECT_EQ(ctx.state().readReg(0, 3), 0xdeadbeefcafef00dull);
    EXPECT_EQ(ctx.state().readReg(0, 4), 0xffffffffcafef00dull); // sext32
    EXPECT_EQ(ctx.state().readReg(0, 5), 0x0dull);
}

TEST_F(Alpha64Test, BranchesAndJumps)
{
    SimContext ctx(*spec_);
    Program p;
    p.entry = 0x10000;
    Segment s;
    s.base = 0x10000;
    auto push = [&](uint32_t w) {
        for (int i = 0; i < 4; ++i)
            s.bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    };
    // beq R1 (taken, +1) ; pal_halt (skipped) ; br R5, +0 ;
    push(mustEncode(*spec_, "beq", {{"ra", 1}, {"bdisp", 1}}));
    push(mustEncode(*spec_, "pal_halt", {}));
    push(mustEncode(*spec_, "br", {{"ra", 5}, {"bdisp", 0}}));
    // jmp R6, (R2)
    push(mustEncode(*spec_, "jmp", {{"ra", 6}, {"rb", 2}}));
    p.segments.push_back(std::move(s));
    ctx.load(p);
    ctx.state().writeReg(0, 1, 0);        // beq condition true
    ctx.state().writeReg(0, 2, 0x10010);  // jmp target
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    DynInst di;
    EXPECT_EQ(sim->execute(di), RunStatus::Ok); // beq
    EXPECT_TRUE(di.branchTaken());
    EXPECT_EQ(ctx.state().pc(), 0x10008u);
    EXPECT_EQ(sim->execute(di), RunStatus::Ok); // br
    EXPECT_EQ(ctx.state().readReg(0, 5), 0x1000cu); // link
    EXPECT_EQ(ctx.state().pc(), 0x1000cu);
    EXPECT_EQ(sim->execute(di), RunStatus::Ok); // jmp
    EXPECT_EQ(ctx.state().readReg(0, 6), 0x10010u);
    EXPECT_EQ(ctx.state().pc(), 0x10010u);
}

TEST_F(Alpha64Test, BackwardBranchDisplacement)
{
    SimContext ctx(*spec_);
    Program p;
    p.entry = 0x10004;
    Segment s;
    s.base = 0x10000;
    auto push = [&](uint32_t w) {
        for (int i = 0; i < 4; ++i)
            s.bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    };
    push(mustEncode(*spec_, "pal_halt", {}));
    // br with bdisp = -2 (21-bit two's complement): to 0x10000.
    push(mustEncode(*spec_, "br",
                    {{"ra", 31}, {"bdisp", (1u << 21) - 2}}));
    p.segments.push_back(std::move(s));
    ctx.load(p);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    DynInst di;
    EXPECT_EQ(sim->execute(di), RunStatus::Ok);
    EXPECT_EQ(ctx.state().pc(), 0x10000u);
    EXPECT_EQ(sim->execute(di), RunStatus::Halted); // pal_halt
}

} // namespace
} // namespace onespec
