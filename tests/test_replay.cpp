/**
 * @file
 * Record/replay tests: OSPTAPE1/OSPBNDL1 container round-trips and
 * damage rejection, TapeRecorder slice bookkeeping, strict-tape
 * verification of the OS-call stream, and end-to-end repro bundles --
 * a fleet quarantine must yield a bundle that re-executes to the same
 * error kind (and a clean recording to the same state hash) on both
 * back ends.  Format reference: docs/REPLAY.md.
 */

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "fault/fault.hpp"
#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "obs/flight_recorder.hpp"
#include "parallel/fleet.hpp"
#include "replay/bundle.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "replay/tape.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

namespace onespec {
namespace {

using replay::Bundle;
using replay::ReplayBackend;
using replay::ReplayOptions;
using replay::ReplayReport;
using replay::Tape;
using replay::TapeError;

/** A fully populated tape (every section non-empty) for container
 *  tests.  Small on purpose: damage tests flip every byte. */
Tape
sampleTape()
{
    auto spec = loadIsa("alpha64");
    Tape t;
    t.specName = spec->props.name;
    t.specFingerprint = spec->fingerprint;
    t.buildset = "BlockAllNo";
    t.useInterp = false;
    t.jobName = "alpha64/sample";
    t.maxInstrs = 123456;
    t.strictSyscalls = true;
    t.profileStride = 64;
    t.chunkHint = 4096;

    auto b = makeBuilder(*spec);
    t.program = buildKernel(*b, "fib", 8);
    t.hasProgram = true;

    t.initImage = {0xde, 0xad, 0xbe, 0xef, 0x01};
    t.restoreImages.push_back({1, 2, 3});
    t.restoreImages.push_back({});
    t.restoreImages.push_back({9, 8, 7, 6});
    t.faultPlan = fault::FaultPlan::random(
        77, 1000, {fault::FaultOp::CorruptInstr, fault::FaultOp::PcBitFlip},
        3);
    t.cuts.push_back({1000, replay::CutKind::Chunk});
    t.cuts.push_back({2000, replay::CutKind::Preempt});
    t.syscalls.push_back({4, 1, 0x200, 9, 9, false});
    t.syscalls.push_back({1, 42, 0, 0, ~uint64_t{0}, true});

    t.expected.finished = true;
    t.expected.runStatus = RunStatus::Halted;
    t.expected.stateHash = 0x1122334455667788ull;
    t.expected.instrs = 4242;
    t.expected.output = "0000002b\n";
    t.expected.statsDump = "fleet.alpha64.BlockAllNo.instrs 4242\n";
    t.expected.errorKind = ErrorKind::None;
    return t;
}

TEST(TapeContainer, RoundTripPreservesEveryField)
{
    Tape t = sampleTape();
    Tape d = replay::decodeTape(replay::encodeTape(t));

    EXPECT_EQ(d.specName, t.specName);
    EXPECT_EQ(d.specFingerprint, t.specFingerprint);
    EXPECT_EQ(d.buildset, t.buildset);
    EXPECT_EQ(d.useInterp, t.useInterp);
    EXPECT_EQ(d.jobName, t.jobName);
    EXPECT_EQ(d.maxInstrs, t.maxInstrs);
    EXPECT_EQ(d.strictSyscalls, t.strictSyscalls);
    EXPECT_EQ(d.profileStride, t.profileStride);
    EXPECT_EQ(d.chunkHint, t.chunkHint);

    ASSERT_TRUE(d.hasProgram);
    EXPECT_EQ(d.program.entry, t.program.entry);
    ASSERT_EQ(d.program.segments.size(), t.program.segments.size());
    for (size_t i = 0; i < t.program.segments.size(); ++i) {
        EXPECT_EQ(d.program.segments[i].base, t.program.segments[i].base);
        EXPECT_EQ(d.program.segments[i].bytes, t.program.segments[i].bytes);
    }

    EXPECT_EQ(d.initImage, t.initImage);
    EXPECT_EQ(d.restoreImages, t.restoreImages);

    EXPECT_EQ(d.faultPlan.seed, t.faultPlan.seed);
    ASSERT_EQ(d.faultPlan.events.size(), t.faultPlan.events.size());
    for (size_t i = 0; i < t.faultPlan.events.size(); ++i) {
        EXPECT_EQ(static_cast<int>(d.faultPlan.events[i].op),
                  static_cast<int>(t.faultPlan.events[i].op));
        EXPECT_EQ(d.faultPlan.events[i].trigger,
                  t.faultPlan.events[i].trigger);
        EXPECT_EQ(d.faultPlan.events[i].target,
                  t.faultPlan.events[i].target);
        EXPECT_EQ(d.faultPlan.events[i].bit, t.faultPlan.events[i].bit);
    }

    ASSERT_EQ(d.cuts.size(), t.cuts.size());
    for (size_t i = 0; i < t.cuts.size(); ++i) {
        EXPECT_EQ(d.cuts[i].instrs, t.cuts[i].instrs);
        EXPECT_EQ(static_cast<int>(d.cuts[i].kind),
                  static_cast<int>(t.cuts[i].kind));
    }

    ASSERT_EQ(d.syscalls.size(), t.syscalls.size());
    for (size_t i = 0; i < t.syscalls.size(); ++i) {
        EXPECT_EQ(d.syscalls[i].num, t.syscalls[i].num);
        EXPECT_EQ(d.syscalls[i].a0, t.syscalls[i].a0);
        EXPECT_EQ(d.syscalls[i].a1, t.syscalls[i].a1);
        EXPECT_EQ(d.syscalls[i].a2, t.syscalls[i].a2);
        EXPECT_EQ(d.syscalls[i].ret, t.syscalls[i].ret);
        EXPECT_EQ(d.syscalls[i].err, t.syscalls[i].err);
    }

    EXPECT_EQ(d.expected.finished, t.expected.finished);
    EXPECT_EQ(static_cast<int>(d.expected.runStatus),
              static_cast<int>(t.expected.runStatus));
    EXPECT_EQ(d.expected.stateHash, t.expected.stateHash);
    EXPECT_EQ(d.expected.instrs, t.expected.instrs);
    EXPECT_EQ(d.expected.output, t.expected.output);
    EXPECT_EQ(d.expected.statsDump, t.expected.statsDump);
    EXPECT_EQ(static_cast<int>(d.expected.errorKind),
              static_cast<int>(t.expected.errorKind));
}

TEST(TapeContainer, EveryByteFlipIsRejected)
{
    // A tape is serialized guest history: the whole container -- header,
    // section table, every section payload -- must be CRC-guarded, so
    // no single-bit flip anywhere can decode.
    Tape t = sampleTape();
    t.program = Program{}; // keep the image small enough to sweep fully
    t.hasProgram = false;
    const std::vector<uint8_t> good = replay::encodeTape(t);
    (void)replay::decodeTape(good); // sanity: undamaged image decodes

    for (size_t off = 0; off < good.size(); ++off) {
        std::vector<uint8_t> bad = good;
        bad[off] ^= 0x40;
        EXPECT_THROW(replay::decodeTape(bad), TapeError)
            << "byte " << off << " of " << good.size()
            << " flipped undetected";
    }
}

TEST(TapeContainer, TruncationIsRejected)
{
    const std::vector<uint8_t> good = replay::encodeTape(sampleTape());
    for (size_t len : {size_t{0}, size_t{1}, size_t{7}, good.size() / 2,
                       good.size() - 1}) {
        std::vector<uint8_t> bad(good.begin(), good.begin() + len);
        EXPECT_THROW(replay::decodeTape(bad), TapeError)
            << "truncation to " << len << " bytes undetected";
    }
}

TEST(BundleContainer, RoundTripRegeneratesManifestAndRejectsDamage)
{
    Bundle b;
    b.tape = sampleTape();
    obs::FrEvent ev;
    ev.tsNs = 123;
    ev.a0 = 7;
    ev.a1 = 9;
    ev.id = 3;
    b.frTail.assign(3, ev);

    // In-memory round trip preserves an explicit manifest verbatim.
    b.manifest = "custom: manifest\n";
    Bundle d = replay::decodeBundle(replay::encodeBundle(b));
    EXPECT_EQ(d.manifest, b.manifest);
    ASSERT_EQ(d.frTail.size(), b.frTail.size());
    EXPECT_EQ(d.frTail[1].tsNs, ev.tsNs);
    EXPECT_EQ(d.frTail[1].a0, ev.a0);
    EXPECT_EQ(d.frTail[1].a1, ev.a1);
    EXPECT_EQ(d.frTail[1].id, ev.id);
    EXPECT_EQ(d.tape.jobName, b.tape.jobName);
    EXPECT_EQ(d.tape.expected.stateHash, b.tape.expected.stateHash);

    // writeBundle fills in the canonical manifest and returns the path.
    const std::string dir = ::testing::TempDir() + "replay_bundle_rt";
    b.manifest.clear();
    const std::string path = replay::writeBundle(dir, b.tape.jobName, 5, b);
    ASSERT_TRUE(std::filesystem::exists(path));
    Bundle loaded = replay::loadBundleFile(path);
    EXPECT_FALSE(loaded.manifest.empty());
    EXPECT_NE(loaded.manifest.find("alpha64"), std::string::npos);
    EXPECT_EQ(loaded.manifest, replay::bundleManifest(loaded));

    // Damage anywhere in the bundle container is rejected too.
    std::vector<uint8_t> bytes = replay::encodeBundle(b);
    bytes[bytes.size() / 3] ^= 0x10;
    EXPECT_THROW(replay::decodeBundle(bytes), TapeError);
    EXPECT_THROW(replay::loadBundleFile(dir + "/does_not_exist.bundle"),
                 TapeError);

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

TEST(Recorder, SliceRollbackDropsRecordsSinceTheMark)
{
    // The daemon re-executes a failed slice from its checkpoint, so the
    // recorder must forget that slice's syscalls and cuts or the tape
    // would hold the stream twice.
    replay::TapeRecorder r;
    r.onSyscallResult({4, 1, 0, 5, 5, false});
    r.noteCut(100, replay::CutKind::Preempt);
    r.markSlice();
    r.onSyscallResult({4, 1, 0, 5, 5, false});
    r.onSyscallResult({1, 0, 0, 0, 0, false});
    r.noteCut(200, replay::CutKind::Preempt);
    EXPECT_EQ(r.tape().syscalls.size(), 3u);
    EXPECT_EQ(r.tape().cuts.size(), 2u);
    r.rollbackSlice();
    EXPECT_EQ(r.tape().syscalls.size(), 1u);
    EXPECT_EQ(r.tape().cuts.size(), 1u);
    // A second rollback without a new mark is idempotent.
    r.rollbackSlice();
    EXPECT_EQ(r.tape().syscalls.size(), 1u);
}

/** Record one kernel job through the fleet and return the loaded
 *  bundle plus the job's FleetResult. */
Bundle
recordKernel(const std::string &isa, const std::string &kernel,
             bool use_interp, parallel::FleetResult *out_res = nullptr,
             const fault::FaultPlan *plan = nullptr,
             const std::vector<uint8_t> *restore_image = nullptr)
{
    auto spec = loadIsa(isa);
    auto b = makeBuilder(*spec);
    Program prog = buildKernel(*b, kernel, 64);

    parallel::FleetJob j;
    j.spec = spec.get();
    j.program = &prog;
    j.buildset = use_interp ? "OneAllNo" : "BlockAllNo";
    j.useInterp = use_interp;
    j.maxInstrs = 10'000'000;
    j.name = isa + "/" + kernel;
    j.faultPlan = plan;
    if (restore_image)
        j.restoreImages.push_back(restore_image);

    parallel::FleetPolicy pol;
    pol.bundleDir = ::testing::TempDir() + "replay_record";
    pol.bundleAll = true;
    parallel::SimFleet fleet(1);
    parallel::FleetReport rep = fleet.run({j}, pol);
    const parallel::FleetResult &res = rep.results[0];
    EXPECT_FALSE(res.quarantined) << res.error;
    EXPECT_FALSE(res.bundlePath.empty());
    if (out_res)
        *out_res = res;
    return replay::loadBundleFile(res.bundlePath);
}

TEST(ReplayEndToEnd, RecordedKernelReplaysIdenticallyOnBothBackEnds)
{
    parallel::FleetResult res;
    Bundle b = recordKernel("alpha64", "crc32", /*use_interp=*/false, &res);
    EXPECT_EQ(b.tape.expected.output, goldenOutput("crc32", 64));
    ASSERT_FALSE(b.tape.syscalls.empty())
        << "kernel printed output but the tape recorded no OS calls";

    for (auto be : {ReplayBackend::Recorded, ReplayBackend::Interp,
                    ReplayBackend::Generated}) {
        ReplayOptions opt;
        opt.backend = be;
        ReplayReport rr = replay::replayTape(b.tape, opt);
        std::string why;
        for (const auto &m : rr.mismatches)
            why += m + "; ";
        EXPECT_TRUE(rr.identical) << why;
        EXPECT_EQ(rr.stateHash, res.stateHash);
        EXPECT_EQ(rr.output, res.output);
        EXPECT_EQ(rr.instrs, res.run.instrs);
        EXPECT_EQ(rr.syscallsVerified, b.tape.syscalls.size());
    }
}

TEST(ReplayEndToEnd, TamperedSyscallResultDivergesInStrictModeOnly)
{
    Bundle b = recordKernel("arm32", "strhash", /*use_interp=*/true);
    ASSERT_FALSE(b.tape.syscalls.empty());

    Tape tampered = b.tape;
    tampered.syscalls[0].ret ^= 1;

    // Strict mode verifies each OS-call result as it happens: the
    // altered record no longer matches what the guest observes.
    ReplayReport strict = replay::replayTape(tampered, {});
    EXPECT_FALSE(strict.identical);
    EXPECT_FALSE(strict.mismatches.empty());

    // throwOnMismatch turns the same divergence into a typed error.
    ReplayOptions throwing;
    throwing.throwOnMismatch = true;
    EXPECT_THROW(replay::replayTape(tampered, throwing),
                 replay::ReplayDivergence);

    // Without strict-tape the syscall stream is not consulted, so the
    // tamper is invisible and the end state still matches.
    ReplayOptions loose;
    loose.strictTape = false;
    ReplayReport rr = replay::replayTape(tampered, loose);
    EXPECT_TRUE(rr.identical);
}

TEST(ReplayEndToEnd, QuarantineBundleReproducesTheErrorKind)
{
    // A poisoned buildset quarantines at simulator creation; the bundle
    // must replay to the same SimError kind on both back ends.
    auto spec = loadIsa("ppc32");
    auto kb = makeBuilder(*spec);
    Program prog = buildKernel(*kb, "fib", 16);

    parallel::FleetJob j;
    j.spec = spec.get();
    j.program = &prog;
    j.buildset = "NoSuchBuildset";
    j.name = "ppc32/poisoned";

    parallel::FleetPolicy pol;
    pol.bundleDir = ::testing::TempDir() + "replay_quarantine";
    parallel::SimFleet fleet(1);
    parallel::FleetReport rep = fleet.run({j}, pol);
    const parallel::FleetResult &res = rep.results[0];
    ASSERT_TRUE(res.quarantined);
    ASSERT_EQ(static_cast<int>(res.errorKind),
              static_cast<int>(ErrorKind::Spec));
    ASSERT_FALSE(res.bundlePath.empty())
        << "quarantine did not emit a repro bundle";

    Bundle b = replay::loadBundleFile(res.bundlePath);
    EXPECT_FALSE(b.tape.expected.finished);
    EXPECT_EQ(static_cast<int>(b.tape.expected.errorKind),
              static_cast<int>(ErrorKind::Spec));
    EXPECT_NE(b.manifest.find("expected_error_kind: spec"),
              std::string::npos)
        << "manifest does not name the expected error kind:\n"
        << b.manifest;

    for (auto be : {ReplayBackend::Interp, ReplayBackend::Generated}) {
        ReplayOptions opt;
        opt.backend = be;
        ReplayReport rr = replay::replayTape(b.tape, opt);
        std::string why;
        for (const auto &m : rr.mismatches)
            why += m + "; ";
        EXPECT_TRUE(rr.identical) << why;
        EXPECT_EQ(static_cast<int>(rr.errorKind),
                  static_cast<int>(ErrorKind::Spec));
    }

    std::error_code ec;
    std::filesystem::remove_all(pol.bundleDir, ec);
}

TEST(ReplayEndToEnd, FaultPlanAndRestoreImagesCompose)
{
    // Mid-run checkpoint image restored in-job + a forced syscall
    // failure: the tape must carry both, and replay must re-create the
    // restore and re-observe the forced failure on either back end.
    auto spec = loadIsa("alpha64");
    auto kb = makeBuilder(*spec);
    Program prog = buildKernel(*kb, "sieve", 64);

    SimContext mid(*spec);
    mid.load(prog);
    auto msim = makeInterpSimulator(mid, "OneAllNo");
    ASSERT_EQ(static_cast<int>(msim->run(500).status),
              static_cast<int>(RunStatus::Ok));
    const std::vector<uint8_t> image = ckpt::encode(ckpt::capture(mid));

    fault::FaultPlan plan;
    plan.seed = 11;
    plan.events.push_back({fault::FaultOp::SyscallFail, 1, 0, 0, false});

    parallel::FleetResult res;
    Bundle b = recordKernel("alpha64", "sieve", /*use_interp=*/false, &res,
                            &plan, &image);
    ASSERT_GT(res.faultsInjected, 0u) << "the syscall fault never fired";
    ASSERT_FALSE(b.tape.restoreImages.empty());
    ASSERT_FALSE(b.tape.faultPlan.empty());
    ASSERT_FALSE(b.tape.syscalls.empty());
    EXPECT_TRUE(b.tape.syscalls[0].err)
        << "the recorded stream should show the forced failure";

    for (auto be : {ReplayBackend::Interp, ReplayBackend::Generated}) {
        ReplayOptions opt;
        opt.backend = be;
        ReplayReport rr = replay::replayTape(b.tape, opt);
        std::string why;
        for (const auto &m : rr.mismatches)
            why += m + "; ";
        EXPECT_TRUE(rr.identical) << why;
        EXPECT_EQ(rr.stateHash, res.stateHash);
    }
}

TEST(FlightTail, DisarmedTailIsEmptyAndRegistersNoRing)
{
    // Quarantine paths export the postmortem tail unconditionally; when
    // recording was never armed that must yield an empty tail without
    // creating (or registering) a ring for this thread.
    auto &fc = obs::FlightControl::instance();
    ASSERT_FALSE(fc.armed());
    const size_t before = fc.recorders().size();
    EXPECT_TRUE(fc.tailOrEmpty(32).empty());
    EXPECT_EQ(fc.recorders().size(), before);
}

} // namespace
} // namespace onespec
