/**
 * @file
 * Differential fuzzing of the two back ends: random instruction sequences
 * (arithmetic/logic plus memory ops against a pinned base register) run
 * on the interpreter and on every generated buildset must leave identical
 * architectural state.  Since both back ends derive from one
 * specification, any divergence is a synthesis or evaluation bug.
 */

#include <filesystem>
#include <random>

#include <gtest/gtest.h>

#include "adl/encexpr.hpp"
#include "ckpt/checkpoint.hpp"
#include "fault/fault.hpp"
#include "iface/registry.hpp"
#include "parallel/fleet.hpp"
#include "isa/isa.hpp"
#include "replay/bundle.hpp"
#include "replay/replayer.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "workload/builder.hpp"

namespace onespec {
namespace {

struct FuzzCfg
{
    std::string isa;
    uint32_t seed;
};

class FuzzTest : public ::testing::TestWithParam<FuzzCfg>
{
};

/**
 * Build a random straight-line program: any non-control-flow,
 * non-memory instruction with random operand fields, plus loads/stores
 * whose base-register field is forced to a pinned register holding a
 * valid buffer address.  Ends with the ISA's halt.
 */
Program
randomProgram(const Spec &spec, std::mt19937 &rng, unsigned count,
              unsigned base_reg, uint64_t buf_addr)
{
    // Candidate instructions and their formats.
    std::vector<uint16_t> plain, memops;
    for (uint16_t i = 0; i < spec.instrs.size(); ++i) {
        const InstrInfo &ii = spec.instrs[i];
        if (ii.isControlFlow || ii.isSyscall)
            continue;
        if (ii.hasMemAccess)
            memops.push_back(i);
        else
            plain.push_back(i);
    }

    Program p;
    p.entry = 0x10000;
    Segment code;
    code.base = 0x10000;
    bool be = !spec.props.littleEndian;
    auto push = [&](uint32_t w) {
        if (be) {
            code.bytes.push_back(static_cast<uint8_t>(w >> 24));
            code.bytes.push_back(static_cast<uint8_t>(w >> 16));
            code.bytes.push_back(static_cast<uint8_t>(w >> 8));
            code.bytes.push_back(static_cast<uint8_t>(w));
        } else {
            code.bytes.push_back(static_cast<uint8_t>(w));
            code.bytes.push_back(static_cast<uint8_t>(w >> 8));
            code.bytes.push_back(static_cast<uint8_t>(w >> 16));
            code.bytes.push_back(static_cast<uint8_t>(w >> 24));
        }
    };

    for (unsigned n = 0; n < count; ++n) {
        bool mem = !memops.empty() && rng() % 4 == 0;
        uint16_t id = mem ? memops[rng() % memops.size()]
                          : plain[rng() % plain.size()];
        const InstrInfo &ii = spec.instrs[id];
        const FormatDecl &fmt = spec.formats[ii.formatIndex];
        uint32_t w = ii.fixedBits;
        for (const auto &ff : fmt.fields) {
            unsigned width = ff.hi - ff.lo + 1;
            uint32_t fmask = static_cast<uint32_t>(lowMask(width))
                             << ff.lo;
            if (fmask & ii.fixedMask)
                continue;
            w = static_cast<uint32_t>(
                insertBits(w, ff.hi, ff.lo, rng()));
        }
        if (mem) {
            // Force every regfile-indexed operand's index expression to
            // land on safe registers: pin all register-selector fields
            // to base_reg and the offset/displacement fields to small
            // values.  Cheap approximation: pin any field wider than 11
            // bits (displacements) to a small value and any 4-6 bit
            // field to base_reg.
            for (const auto &ff : fmt.fields) {
                unsigned width = ff.hi - ff.lo + 1;
                uint32_t fmask = static_cast<uint32_t>(lowMask(width))
                                 << ff.lo;
                if (fmask & ii.fixedMask)
                    continue;
                if (width >= 11) {
                    w = static_cast<uint32_t>(
                        insertBits(w, ff.hi, ff.lo, rng() % 256));
                } else if (width >= 4 && width <= 6) {
                    w = static_cast<uint32_t>(
                        insertBits(w, ff.hi, ff.lo, base_reg));
                }
            }
            // ARM: keep cond AL so the access happens.
            if (spec.props.name == "arm32")
                w = static_cast<uint32_t>(insertBits(w, 31, 28, 14));
        }
        push(w);
        (void)buf_addr;
    }

    // Halt.
    const char *halt = spec.props.name == "alpha64" ? "pal_halt"
                       : spec.props.name == "arm32" ? "arm_halt"
                                                    : "ppc_halt";
    push(spec.instrs[spec.instrIndex.at(halt)].fixedBits);
    p.segments.push_back(std::move(code));
    return p;
}

void
seedState(const Spec &spec, SimContext &ctx, std::mt19937 &rng,
          unsigned base_reg, uint64_t buf_addr)
{
    std::mt19937 r2(rng()); // independent stream per context
    for (size_t fi = 0; fi < spec.state.files.size(); ++fi) {
        for (unsigned i = 0; i < spec.state.files[fi].count; ++i) {
            uint64_t v = (static_cast<uint64_t>(r2()) << 32) | r2();
            ctx.state().writeReg(static_cast<unsigned>(fi), i, v);
        }
    }
    for (size_t i = 0; i < spec.state.scalars.size(); ++i)
        ctx.state().writeScalar(static_cast<unsigned>(i), r2());
    // Pin the memory base register to the buffer.
    ctx.state().writeReg(0, base_reg, buf_addr);
}

TEST_P(FuzzTest, BackendsAgreeOnRandomPrograms)
{
    const FuzzCfg &cfg = GetParam();
    auto spec = loadIsa(cfg.isa);
    std::mt19937 rng(cfg.seed);
    const unsigned base_reg = 2;
    const uint64_t buf = 0x200000; // ±64KB of scratch around it

    for (int round = 0; round < 8; ++round) {
        uint32_t pseed = rng();
        std::mt19937 prng(pseed);
        Program prog = randomProgram(*spec, prng, 40, base_reg, buf);

        // Reference: interpreter at full detail.
        SimContext ref(*spec);
        std::mt19937 s1(pseed + 1);
        ref.load(prog);
        seedState(*spec, ref, s1, base_reg, buf);
        auto isim = makeInterpSimulator(ref, "OneAllNo");
        RunResult rr = isim->run(1000);

        for (const char *bs :
             {"OneMinNo", "OneAllYes", "BlockAllNo", "StepAllNo"}) {
            SimContext ctx(*spec);
            std::mt19937 s2(pseed + 1);
            ctx.load(prog);
            seedState(*spec, ctx, s2, base_reg, buf);
            auto gsim = SimRegistry::instance().create(ctx, bs);
            ASSERT_NE(gsim, nullptr);
            RunResult gr = gsim->run(1000);
            EXPECT_EQ(static_cast<int>(gr.status),
                      static_cast<int>(rr.status))
                << cfg.isa << "/" << bs << " seed=" << pseed;
            EXPECT_EQ(gr.instrs, rr.instrs)
                << cfg.isa << "/" << bs << " seed=" << pseed;
            EXPECT_TRUE(ctx.state() == ref.state())
                << cfg.isa << "/" << bs << " seed=" << pseed
                << ": architectural state diverged";
        }
    }
}

std::vector<FuzzCfg>
fuzzCases()
{
    std::vector<FuzzCfg> cases;
    for (const auto &isa : shippedIsas())
        for (uint32_t seed : {1u, 2u, 3u, 4u})
            cases.push_back({isa, seed});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllIsas, FuzzTest,
                         ::testing::ValuesIn(fuzzCases()),
                         [](const auto &info) {
                             return info.param.isa + "_s" +
                                    std::to_string(info.param.seed);
                         });

/**
 * Build a random control-flow program through the portable
 * KernelBuilder: a bounded loop whose counter lives in a pinned virtual
 * register (v0, never a random destination), with a body of random
 * arithmetic over v1..v5 and occasional forward branches skipping a
 * couple of operations.  Exercises taken/not-taken branches, the
 * backward loop edge (and with it the generated Block simulators' block
 * cache across re-entry), and ends with a clean OS exit.
 */
Program
randomLoopProgram(const Spec &spec, std::mt19937 &rng)
{
    auto b = makeBuilder(spec);
    const int counter = 0; // pinned: only the loop epilogue writes it
    const int zero = 6;    // pinned zero register for the exit compare

    auto rsrc = [&] { return static_cast<int>(rng() % 7); };     // v0..v6
    auto rdst = [&] { return static_cast<int>(1 + rng() % 5); }; // v1..v5

    b->li(zero, 0);
    b->li(counter, 3 + rng() % 10);
    for (int v = 1; v <= 5; ++v)
        b->li(v, rng());

    int loop = b->newLabel();
    b->bind(loop);
    unsigned body = 4 + rng() % 8;
    for (unsigned n = 0; n < body; ++n) {
        if (rng() % 5 == 0) {
            // Forward branch over two ops; taken-ness depends on the
            // random register contents, so both paths get exercised
            // across seeds and loop iterations.
            int skip = b->newLabel();
            int a = rsrc(), c = rsrc();
            switch (rng() % 3) {
            case 0: b->beq(a, c, skip); break;
            case 1: b->bne(a, c, skip); break;
            default: b->blt(a, c, skip); break;
            }
            b->addi(rdst(), rsrc(), static_cast<int32_t>(rng() % 64));
            b->xor_(rdst(), rsrc(), rsrc());
            b->bind(skip);
            continue;
        }
        switch (rng() % 8) {
        case 0: b->add(rdst(), rsrc(), rsrc()); break;
        case 1: b->sub(rdst(), rsrc(), rsrc()); break;
        case 2: b->mul(rdst(), rsrc(), rsrc()); break;
        case 3: b->and_(rdst(), rsrc(), rsrc()); break;
        case 4: b->or_(rdst(), rsrc(), rsrc()); break;
        case 5: b->addi(rdst(), rsrc(),
                        static_cast<int32_t>(rng() % 128) - 64); break;
        case 6: b->shli(rdst(), rsrc(), 1 + rng() % 15); break;
        default: b->shri(rdst(), rsrc(), 1 + rng() % 15); break;
        }
    }
    b->addi(counter, counter, -1);
    b->bne(counter, zero, loop);
    b->emitExit(7, 0);
    return b->finish("fuzzloop");
}

class FuzzLoopTest : public ::testing::TestWithParam<FuzzCfg>
{
};

TEST_P(FuzzLoopTest, BackendsAgreeOnRandomControlFlow)
{
    const FuzzCfg &cfg = GetParam();
    auto spec = loadIsa(cfg.isa);
    std::mt19937 rng(cfg.seed);

    for (int round = 0; round < 6; ++round) {
        uint32_t pseed = rng();
        std::mt19937 prng(pseed);
        Program prog = randomLoopProgram(*spec, prng);

        // Reference: interpreter at full detail.
        SimContext ref(*spec);
        ref.load(prog);
        auto isim = makeInterpSimulator(ref, "OneAllNo");
        RunResult rr = isim->run(100'000);
        ASSERT_EQ(rr.status, RunStatus::Halted)
            << cfg.isa << " seed=" << pseed
            << ": loop did not terminate; instrs=" << rr.instrs;
        ASSERT_EQ(ref.os().exitCode(), 0);

        for (const char *bs :
             {"OneMinNo", "OneAllYes", "BlockAllNo", "StepAllNo"}) {
            SimContext ctx(*spec);
            ctx.load(prog);
            auto gsim = SimRegistry::instance().create(ctx, bs);
            ASSERT_NE(gsim, nullptr);
            RunResult gr = gsim->run(100'000);
            EXPECT_EQ(static_cast<int>(gr.status),
                      static_cast<int>(rr.status))
                << cfg.isa << "/" << bs << " seed=" << pseed;
            EXPECT_EQ(gr.instrs, rr.instrs)
                << cfg.isa << "/" << bs << " seed=" << pseed;
            EXPECT_EQ(ctx.os().exitCode(), ref.os().exitCode())
                << cfg.isa << "/" << bs << " seed=" << pseed;
            EXPECT_TRUE(ctx.state() == ref.state())
                << cfg.isa << "/" << bs << " seed=" << pseed
                << ": architectural state diverged";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, FuzzLoopTest,
                         ::testing::ValuesIn(fuzzCases()),
                         [](const auto &info) {
                             return info.param.isa + "_s" +
                                    std::to_string(info.param.seed);
                         });

/**
 * Checkpoint round-trip family: run a random control-flow program to a
 * random midpoint, capture, push the checkpoint through the binary
 * container (encode+decode), restore into a *fresh* context, resume --
 * and require the resumed run to be indistinguishable from never having
 * stopped, on every back end.  Since both the program and the cut point
 * are random, this sweeps checkpoint coverage across decode caches,
 * block caches, speculation journals, and every ISA's state layout.
 */
class FuzzCkptTest : public ::testing::TestWithParam<FuzzCfg>
{
};

TEST_P(FuzzCkptTest, MidRunCheckpointResumesBitIdentically)
{
    const FuzzCfg &cfg = GetParam();
    auto spec = loadIsa(cfg.isa);
    std::mt19937 rng(cfg.seed ^ 0xc4e97000u);

    // The twelve standard interface definitions, plus the interpreter
    // (back end index -1).
    const std::vector<const char *> buildsets = {
        "BlockMinNo", "BlockDecNo", "BlockDecYes", "BlockAllNo",
        "BlockAllYes", "OneMinNo",  "OneDecNo",    "OneDecYes",
        "OneAllNo",   "OneAllYes",  "StepAllNo",   "StepAllYes"};

    for (int round = 0; round < 3; ++round) {
        uint32_t pseed = rng();
        std::mt19937 prng(pseed);
        Program prog = randomLoopProgram(*spec, prng);

        for (int b = -1; b < static_cast<int>(buildsets.size()); ++b) {
            auto make = [&](SimContext &c) {
                return b < 0 ? makeInterpSimulator(c, "OneAllNo")
                             : SimRegistry::instance().create(
                                   c, buildsets[b]);
            };
            const char *name = b < 0 ? "interp" : buildsets[b];

            // Reference: uninterrupted run on this back end.
            SimContext ref(*spec);
            ref.load(prog);
            auto rsim = make(ref);
            ASSERT_NE(rsim, nullptr) << cfg.isa << "/" << name;
            RunResult rr = rsim->run(100'000);
            ASSERT_EQ(static_cast<int>(rr.status),
                      static_cast<int>(RunStatus::Halted))
                << cfg.isa << "/" << name << " seed=" << pseed;
            ASSERT_GT(rr.instrs, 1u);

            // Cut the same execution at a random midpoint.
            uint64_t mid = 1 + prng() % (rr.instrs - 1);
            SimContext a(*spec);
            a.load(prog);
            auto asim = make(a);
            RunResult r1 = asim->run(mid);
            ASSERT_EQ(static_cast<int>(r1.status),
                      static_cast<int>(RunStatus::Ok))
                << cfg.isa << "/" << name << " seed=" << pseed
                << " mid=" << mid;
            // Both container generations must reproduce the capture:
            // the v2 (block-coded) image feeds the restore below; the
            // legacy v1 image must decode to the identical state.
            ckpt::Checkpoint cap = ckpt::capture(a);
            ckpt::Checkpoint ck = ckpt::decode(ckpt::encode(cap));
            ckpt::EncodeOptions v1opt;
            v1opt.version = ckpt::kFormatVersionV1;
            ckpt::Checkpoint v1ck =
                ckpt::decode(ckpt::encode(cap, v1opt));
            ASSERT_EQ(v1ck.id, ck.id)
                << cfg.isa << "/" << name << " seed=" << pseed
                << ": v1/v2 containers decode to different state";
            ASSERT_EQ(v1ck.pc, ck.pc);
            ASSERT_EQ(v1ck.words, ck.words);
            ASSERT_EQ(v1ck.pages.size(), ck.pages.size());

            // Restore into a fresh context and resume to completion.
            SimContext res(*spec);
            res.load(prog);
            auto bsim = make(res);
            ckpt::restore(res, ck);
            bsim->onStateRestored();
            RunResult r2 = bsim->run(100'000);

            EXPECT_EQ(static_cast<int>(r2.status),
                      static_cast<int>(rr.status))
                << cfg.isa << "/" << name << " seed=" << pseed
                << " mid=" << mid;
            EXPECT_EQ(mid + r2.instrs, rr.instrs)
                << cfg.isa << "/" << name << " seed=" << pseed
                << " mid=" << mid;
            EXPECT_EQ(res.os().exitCode(), ref.os().exitCode())
                << cfg.isa << "/" << name << " seed=" << pseed;
            EXPECT_EQ(res.os().output(), ref.os().output())
                << cfg.isa << "/" << name << " seed=" << pseed;
            EXPECT_TRUE(res.state() == ref.state())
                << cfg.isa << "/" << name << " seed=" << pseed
                << " mid=" << mid
                << ": state diverged after checkpoint resume";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, FuzzCkptTest,
                         ::testing::ValuesIn(fuzzCases()),
                         [](const auto &info) {
                             return info.param.isa + "_s" +
                                    std::to_string(info.param.seed);
                         });

/**
 * Fault-plan family: seeded plans drawn from the guaranteed-detectable
 * menu (undecodable-instruction corruption and address-limit PC flips
 * for live state; bit-flips and truncation for serialized checkpoints)
 * are injected through the SimFleet containment path against random
 * control-flow programs, on the interpreter and a generated buildset.
 * Every injected corruption must surface as RunStatus::Fault or a
 * quarantine -- a single silent absorption fails the family.
 */
class FuzzFaultTest : public ::testing::TestWithParam<FuzzCfg>
{
};

TEST_P(FuzzFaultTest, InjectedCorruptionIsNeverSilentlyAbsorbed)
{
    const FuzzCfg &cfg = GetParam();
    auto spec = loadIsa(cfg.isa);
    std::mt19937 rng(cfg.seed ^ 0xfa017000u);
    parallel::SimFleet fleet(2);

    for (int round = 0; round < 2; ++round) {
        uint32_t pseed = rng();
        std::mt19937 prng(pseed);
        Program prog = randomLoopProgram(*spec, prng);

        for (bool interp : {true, false}) {
            // Reference length of the unfaulted run bounds the triggers.
            SimContext ref(*spec);
            ref.load(prog);
            auto rsim = interp
                ? makeInterpSimulator(ref, "OneAllNo")
                : SimRegistry::instance().create(ref, "BlockAllNo");
            ASSERT_NE(rsim, nullptr);
            RunResult rr = rsim->run(100'000);
            ASSERT_EQ(static_cast<int>(rr.status),
                      static_cast<int>(RunStatus::Halted));
            ASSERT_GT(rr.instrs, 2u);

            // State-class plans: corrupt live state mid-run.
            std::vector<fault::FaultPlan> plans;
            std::vector<parallel::FleetJob> jobs;
            for (unsigned s = 0; s < 3; ++s) {
                plans.push_back(fault::FaultPlan::random(
                    pseed + s, rr.instrs - 1,
                    {fault::FaultOp::CorruptInstr, fault::FaultOp::PcBitFlip},
                    1));
            }
            for (unsigned s = 0; s < 3; ++s) {
                parallel::FleetJob j;
                j.spec = spec.get();
                j.program = &prog;
                j.buildset = "BlockAllNo";
                j.useInterp = interp;
                j.maxInstrs = 100'000;
                j.name = cfg.isa + "/state" + std::to_string(s);
                j.faultPlan = &plans[s];
                jobs.push_back(std::move(j));
            }

            // Container-class plans: corrupt a serialized checkpoint and
            // restore it inside the job.
            SimContext cctx(*spec);
            cctx.load(prog);
            auto csim = interp
                ? makeInterpSimulator(cctx, "OneAllNo")
                : SimRegistry::instance().create(cctx, "BlockAllNo");
            ASSERT_EQ(static_cast<int>(csim->run(rr.instrs / 2).status),
                      static_cast<int>(RunStatus::Ok));
            std::vector<uint8_t> image =
                ckpt::encode(ckpt::capture(cctx));
            std::vector<fault::FaultPlan> cplans;
            for (unsigned s = 0; s < 3; ++s) {
                cplans.push_back(fault::FaultPlan::random(
                    pseed + 0x40 + s, image.size(),
                    {fault::FaultOp::CkptBitFlip,
                     fault::FaultOp::CkptTruncate},
                    1));
            }
            for (unsigned s = 0; s < 3; ++s) {
                parallel::FleetJob j;
                j.spec = spec.get();
                j.program = &prog;
                j.buildset = "BlockAllNo";
                j.useInterp = interp;
                j.maxInstrs = 100'000;
                j.name = cfg.isa + "/ckpt" + std::to_string(s);
                j.restoreImages.push_back(&image);
                j.faultPlan = &cplans[s];
                jobs.push_back(std::move(j));
            }

            parallel::FleetReport rep = fleet.run(jobs);
            for (size_t i = 0; i < jobs.size(); ++i) {
                const auto &res = rep.results[i];
                EXPECT_TRUE(res.quarantined ||
                            res.run.status == RunStatus::Fault)
                    << cfg.isa << (interp ? "/interp " : "/generated ")
                    << jobs[i].name << " seed=" << pseed
                    << ": corruption was silently absorbed"
                    << " (status=" << static_cast<int>(res.run.status)
                    << ", instrs=" << res.run.instrs << ")";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, FuzzFaultTest,
                         ::testing::ValuesIn(fuzzCases()),
                         [](const auto &info) {
                             return info.param.isa + "_s" +
                                    std::to_string(info.param.seed);
                         });

/**
 * Record/replay family: random control-flow programs are recorded
 * through the fleet's record mode on each back end, then every tape is
 * strict-replayed on *both* back ends -- the recording of one must
 * re-execute bit-identically on the other, since both derive from one
 * specification.  A seeded single-bit corruption of each tape container
 * must be rejected with TapeError, never silently replayed.
 */
class FuzzReplayTest : public ::testing::TestWithParam<FuzzCfg>
{
};

TEST_P(FuzzReplayTest, RecordedRunsReplayIdenticallyOnBothBackEnds)
{
    const FuzzCfg &cfg = GetParam();
    auto spec = loadIsa(cfg.isa);
    std::mt19937 rng(cfg.seed ^ 0x5e91a700u);
    parallel::SimFleet fleet(2);
    const std::string dir = ::testing::TempDir() + "fuzz_replay_" +
                            cfg.isa + "_s" + std::to_string(cfg.seed);

    for (int round = 0; round < 2; ++round) {
        uint32_t pseed = rng();
        std::mt19937 prng(pseed);
        Program prog = randomLoopProgram(*spec, prng);

        // One recording per back end, via the fleet's record mode.
        std::vector<parallel::FleetJob> jobs;
        for (bool interp : {true, false}) {
            parallel::FleetJob j;
            j.spec = spec.get();
            j.program = &prog;
            j.buildset = interp ? "OneAllNo" : "BlockAllNo";
            j.useInterp = interp;
            j.maxInstrs = 100'000;
            j.name = cfg.isa + (interp ? "/interp" : "/gen");
            jobs.push_back(std::move(j));
        }
        parallel::FleetPolicy pol;
        pol.bundleDir = dir;
        pol.bundleAll = true;
        parallel::FleetReport rep = fleet.run(jobs, pol);

        for (size_t i = 0; i < jobs.size(); ++i) {
            const auto &res = rep.results[i];
            ASSERT_FALSE(res.quarantined)
                << jobs[i].name << " seed=" << pseed << ": " << res.error;
            ASSERT_FALSE(res.bundlePath.empty())
                << jobs[i].name << " seed=" << pseed
                << ": record mode emitted no bundle";
            replay::Bundle b = replay::loadBundleFile(res.bundlePath);

            for (auto be : {replay::ReplayBackend::Interp,
                            replay::ReplayBackend::Generated}) {
                replay::ReplayOptions opt;
                opt.backend = be;
                replay::ReplayReport rr = replay::replayTape(b.tape, opt);
                std::string why;
                for (const auto &m : rr.mismatches)
                    why += m + "; ";
                EXPECT_TRUE(rr.identical)
                    << jobs[i].name << " seed=" << pseed << " replayed on "
                    << (be == replay::ReplayBackend::Interp ? "interp"
                                                            : "generated")
                    << ": " << why;
                EXPECT_EQ(rr.stateHash, res.stateHash)
                    << jobs[i].name << " seed=" << pseed;
            }

            // Damage rejection: one seeded bit flip anywhere in the
            // container must raise TapeError.
            std::vector<uint8_t> bytes = replay::encodeTape(b.tape);
            std::mt19937 crng(pseed ^ 0x7ab0u);
            bytes[crng() % bytes.size()] ^=
                static_cast<uint8_t>(1u << (crng() % 8));
            EXPECT_THROW(replay::decodeTape(bytes), replay::TapeError)
                << jobs[i].name << " seed=" << pseed;
        }
    }
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

INSTANTIATE_TEST_SUITE_P(AllIsas, FuzzReplayTest,
                         ::testing::ValuesIn(fuzzCases()),
                         [](const auto &info) {
                             return info.param.isa + "_s" +
                                    std::to_string(info.param.seed);
                         });

} // namespace
} // namespace onespec
