/**
 * @file
 * End-to-end smoke tests over the mini ISA: parse -> analyze -> encode ->
 * load -> interpret, across several buildsets.
 */

#include <gtest/gtest.h>

#include "adl/encode.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "testutil.hpp"

namespace onespec::test {
namespace {

class SmokeTest : public ::testing::Test
{
  protected:
    void SetUp() override { spec_ = makeMiniSpec(); }

    /** Assemble a program from raw words at base 0x1000. */
    Program
    makeProgram(const std::vector<uint32_t> &words)
    {
        Program p;
        p.name = "smoke";
        p.entry = 0x1000;
        Segment seg;
        seg.base = 0x1000;
        for (uint32_t w : words) {
            for (int i = 0; i < 4; ++i)
                seg.bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
        }
        p.segments.push_back(std::move(seg));
        return p;
    }

    uint32_t
    enc(const std::string &name, std::vector<EncField> fields)
    {
        return mustEncode(*spec_, name, fields);
    }

    std::unique_ptr<Spec> spec_;
};

TEST_F(SmokeTest, SpecBasics)
{
    EXPECT_EQ(spec_->props.name, "mini");
    EXPECT_EQ(spec_->instrs.size(), 10u);
    EXPECT_EQ(spec_->buildsets.size(), 8u);
    EXPECT_GE(spec_->slots.size(), 4u);
    // Decode round trip for every instruction's canonical encoding.
    for (size_t i = 0; i < spec_->instrs.size(); ++i) {
        uint32_t w = spec_->instrs[i].fixedBits;
        EXPECT_EQ(spec_->decode(w), static_cast<int>(i))
            << spec_->instrs[i].name;
    }
}

TEST_F(SmokeTest, AddExecutes)
{
    // li r1, 5; li r2, 7; add r3 = r1 + r2; hlt
    auto prog = makeProgram({
        enc("li", {{"ra", 1}, {"imm", 5}}),
        enc("li", {{"ra", 2}, {"imm", 7}}),
        enc("add", {{"ra", 1}, {"rb", 2}, {"rc", 3}}),
        enc("hlt", {}),
    });
    SimContext ctx(*spec_);
    ctx.load(prog);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    RunResult rr = sim->run(100);
    EXPECT_EQ(rr.status, RunStatus::Halted);
    EXPECT_EQ(rr.instrs, 4u);
    EXPECT_EQ(ctx.state().readReg(0, 3), 12u);
}

TEST_F(SmokeTest, ZeroRegisterReadsZeroDiscardsWrites)
{
    auto prog = makeProgram({
        enc("li", {{"ra", 7}, {"imm", 42}}),      // write discarded
        enc("add", {{"ra", 7}, {"rb", 7}, {"rc", 1}}), // r1 = 0 + 0
        enc("hlt", {}),
    });
    SimContext ctx(*spec_);
    ctx.load(prog);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    sim->run(100);
    EXPECT_EQ(ctx.state().readReg(0, 7), 0u);
    EXPECT_EQ(ctx.state().readReg(0, 1), 0u);
}

TEST_F(SmokeTest, LoadStoreRoundTrip)
{
    // li r1, 0x22; li r2, 0x2000(base); stq [r2+8] = r1; ldq r3 = [r2+8]
    auto prog = makeProgram({
        enc("li", {{"ra", 1}, {"imm", 0x22}}),
        enc("li", {{"ra", 2}, {"imm", 0x2000}}),
        enc("stq", {{"ra", 1}, {"rb", 2}, {"imm", 8}}),
        enc("ldq", {{"ra", 3}, {"rb", 2}, {"imm", 8}}),
        enc("hlt", {}),
    });
    SimContext ctx(*spec_);
    ctx.load(prog);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    RunResult rr = sim->run(100);
    EXPECT_EQ(rr.status, RunStatus::Halted);
    EXPECT_EQ(ctx.state().readReg(0, 3), 0x22u);
    FaultKind f = FaultKind::None;
    EXPECT_EQ(ctx.mem().read(0x2008, 8, f), 0x22u);
}

TEST_F(SmokeTest, BranchLoopSumsCountdown)
{
    // r1 = 5 (counter), r2 = 0 (sum), r3 = -1 step
    // loop: beq r1, +3 ; add r2 = r2 + r1 ; add r1 = r1 + r3 ; br loop
    // end: hlt
    auto prog = makeProgram({
        enc("li", {{"ra", 1}, {"imm", 5}}),
        enc("li", {{"ra", 2}, {"imm", 0}}),
        enc("li", {{"ra", 3}, {"imm", 0xffff}}), // sext16 -> -1
        enc("beq", {{"ra", 1}, {"imm", 3}}),
        enc("add", {{"ra", 2}, {"rb", 1}, {"rc", 2}}),
        enc("add", {{"ra", 1}, {"rb", 3}, {"rc", 1}}),
        enc("br", {{"imm", 0xfffb}}), // -5: back to beq
        enc("hlt", {}),
    });
    SimContext ctx(*spec_);
    ctx.load(prog);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    RunResult rr = sim->run(1000);
    EXPECT_EQ(rr.status, RunStatus::Halted);
    EXPECT_EQ(ctx.state().readReg(0, 2), 15u); // 5+4+3+2+1
}

TEST_F(SmokeTest, SyscallWriteAndExit)
{
    // Store "hi\n" at 0x3000 then write(1, 0x3000, 3); exit(7).
    auto prog = makeProgram({
        enc("li", {{"ra", 1}, {"imm", 0x6868}}), // placeholder bytes
        enc("li", {{"ra", 2}, {"imm", 0x3000}}),
        enc("stq", {{"ra", 1}, {"rb", 2}, {"imm", 0}}),
        enc("li", {{"ra", 0}, {"imm", 2}}),       // kSysWrite
        enc("li", {{"ra", 1}, {"imm", 1}}),       // fd
        enc("li", {{"ra", 2}, {"imm", 0x3000}}),  // buf
        enc("li", {{"ra", 3}, {"imm", 2}}),       // len
        enc("sys", {}),
        enc("li", {{"ra", 0}, {"imm", 1}}),       // kSysExit
        enc("li", {{"ra", 1}, {"imm", 7}}),
        enc("sys", {}),
        enc("hlt", {}),
    });
    SimContext ctx(*spec_);
    ctx.load(prog);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    RunResult rr = sim->run(100);
    EXPECT_EQ(rr.status, RunStatus::Halted);
    EXPECT_EQ(ctx.os().exitCode(), 7);
    EXPECT_EQ(ctx.os().output(), "hh");
}

TEST_F(SmokeTest, AllBuildsetsAgree)
{
    auto prog = makeProgram({
        enc("li", {{"ra", 1}, {"imm", 100}}),
        enc("li", {{"ra", 2}, {"imm", 0}}),
        enc("li", {{"ra", 3}, {"imm", 0xffff}}),
        enc("beq", {{"ra", 1}, {"imm", 3}}),
        enc("add", {{"ra", 2}, {"rb", 1}, {"rc", 2}}),
        enc("add", {{"ra", 1}, {"rb", 3}, {"rc", 1}}),
        enc("br", {{"imm", 0xfffb}}),
        enc("hlt", {}),
    });

    std::vector<uint64_t> sums;
    std::vector<uint64_t> counts;
    for (const auto &bs : spec_->buildsets) {
        SimContext ctx(*spec_);
        ctx.load(prog);
        auto sim = makeInterpSimulator(ctx, bs.name);
        RunResult rr = sim->run(10000);
        EXPECT_EQ(rr.status, RunStatus::Halted) << bs.name;
        sums.push_back(ctx.state().readReg(0, 2));
        counts.push_back(rr.instrs);
    }
    for (size_t i = 1; i < sums.size(); ++i) {
        EXPECT_EQ(sums[i], sums[0]) << spec_->buildsets[i].name;
        EXPECT_EQ(counts[i], counts[0]) << spec_->buildsets[i].name;
    }
    EXPECT_EQ(sums[0], 5050u);
}

TEST_F(SmokeTest, InformationalDetailControlsVisibility)
{
    auto prog = makeProgram({
        enc("li", {{"ra", 2}, {"imm", 0x2000}}),
        enc("ldq", {{"ra", 3}, {"rb", 2}, {"imm", 8}}),
        enc("hlt", {}),
    });

    int ea = spec_->findSlot("effective_addr");
    int alu = spec_->findSlot("alu_result");
    ASSERT_GE(ea, 0);
    ASSERT_GE(alu, 0);

    auto runAndGrab = [&](const char *bs, DynInst &ld) {
        SimContext ctx(*spec_);
        ctx.load(prog);
        auto sim = makeInterpSimulator(ctx, bs);
        DynInst di;
        EXPECT_EQ(sim->execute(di), RunStatus::Ok);
        EXPECT_EQ(sim->execute(ld), RunStatus::Ok);
    };

    DynInst ld;
    runAndGrab("OneAllNo", ld);
    EXPECT_TRUE(ld.slotWritten(ea));
    EXPECT_EQ(ld.vals[ea], 0x2008u);

    DynInst ld2;
    runAndGrab("OneDecNo", ld2);
    // effective_addr is category `decode` -> visible.
    EXPECT_TRUE(ld2.slotWritten(ea));
    EXPECT_EQ(ld2.vals[ea], 0x2008u);

    DynInst ld3;
    runAndGrab("OneMinNo", ld3);
    // Hidden at min detail: written mask is semantic and still set, but
    // the value never reached the record.
    EXPECT_TRUE(ld3.slotWritten(ea));
    EXPECT_EQ(ld3.vals[ea], 0u);
    // Header info is always present at min.
    EXPECT_EQ(ld3.pc, 0x1004u);
    EXPECT_EQ(ld3.npc, 0x1008u);
}

TEST_F(SmokeTest, UndoRestoresRegistersMemoryAndOutput)
{
    auto prog = makeProgram({
        enc("li", {{"ra", 1}, {"imm", 0x11}}),
        enc("li", {{"ra", 2}, {"imm", 0x2000}}),
        enc("stq", {{"ra", 1}, {"rb", 2}, {"imm", 0}}),
        enc("li", {{"ra", 1}, {"imm", 0x22}}),
        enc("stq", {{"ra", 1}, {"rb", 2}, {"imm", 0}}),
        enc("hlt", {}),
    });
    SimContext ctx(*spec_);
    ctx.load(prog);
    auto sim = makeInterpSimulator(ctx, "OneAllYes");
    DynInst di;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(sim->execute(di), RunStatus::Ok);
    FaultKind f = FaultKind::None;
    EXPECT_EQ(ctx.mem().read(0x2000, 8, f), 0x22u);

    // Undo the second li+stq pair.
    sim->undo(2);
    EXPECT_EQ(ctx.mem().read(0x2000, 8, f), 0x11u);
    EXPECT_EQ(ctx.state().readReg(0, 1), 0x11u);
    EXPECT_EQ(ctx.state().pc(), 0x100cu);

    // Re-execute: same result as before.
    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(sim->execute(di), RunStatus::Ok);
    EXPECT_EQ(ctx.mem().read(0x2000, 8, f), 0x22u);
}

TEST_F(SmokeTest, IllegalInstructionFaults)
{
    auto prog = makeProgram({0x00000000u}); // op==0: no instruction
    SimContext ctx(*spec_);
    ctx.load(prog);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    DynInst di;
    EXPECT_EQ(sim->execute(di), RunStatus::Fault);
    EXPECT_EQ(di.fault, FaultKind::IllegalInstr);
    // pc must not advance past the faulting instruction.
    EXPECT_EQ(ctx.state().pc(), 0x1000u);
}

} // namespace
} // namespace onespec::test
