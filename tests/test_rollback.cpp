/**
 * @file
 * Unit and property tests for the rollback journal.
 */

#include <gtest/gtest.h>

#include "runtime/rollback.hpp"
#include "support/panic_exception.hpp"
#include "testutil.hpp"

namespace onespec {
namespace {

class RollbackTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        spec_ = test::makeMiniSpec();
        state_ = std::make_unique<ArchState>(spec_->state);
    }

    std::unique_ptr<Spec> spec_;
    std::unique_ptr<ArchState> state_;
    Memory mem_;
    RollbackLog log_;
};

TEST_F(RollbackTest, UndoRestoresRegisterWrites)
{
    state_->writeReg(0, 1, 100);
    log_.beginInstr(0x1000, 0, 0, 0);
    log_.recordReg(1, state_->rawWord(1));
    state_->writeReg(0, 1, 200);

    log_.beginInstr(0x1004, 0, 0, 0);
    log_.recordReg(1, state_->rawWord(1));
    state_->writeReg(0, 1, 300);

    EXPECT_EQ(log_.depth(), 2u);
    auto mark = log_.undo(1, *state_, mem_);
    EXPECT_EQ(state_->readReg(0, 1), 200u);
    EXPECT_EQ(mark.pc, 0x1004u);
    EXPECT_EQ(state_->pc(), 0x1004u);

    log_.undo(1, *state_, mem_);
    EXPECT_EQ(state_->readReg(0, 1), 100u);
    EXPECT_EQ(log_.depth(), 0u);
}

TEST_F(RollbackTest, UndoRestoresMemoryInReverseOrder)
{
    FaultKind f = FaultKind::None;
    mem_.write(0x100, 0xaa, 1, f);
    log_.beginInstr(0x1000, 0, 0, 0);
    log_.recordMem(0x100, 1, mem_.read(0x100, 1, f));
    mem_.write(0x100, 0xbb, 1, f);
    // Same location written twice in one instruction.
    log_.recordMem(0x100, 1, mem_.read(0x100, 1, f));
    mem_.write(0x100, 0xcc, 1, f);

    log_.undo(1, *state_, mem_);
    EXPECT_EQ(mem_.read(0x100, 1, f), 0xaau);
}

TEST_F(RollbackTest, UndoMultipleInstructionsAtOnce)
{
    for (int i = 0; i < 10; ++i) {
        log_.beginInstr(0x1000 + 4 * i, 0, 0, 0);
        log_.recordReg(2, state_->rawWord(2));
        state_->writeReg(0, 2, static_cast<uint64_t>(i + 1));
    }
    log_.undo(7, *state_, mem_);
    EXPECT_EQ(state_->readReg(0, 2), 3u);
    EXPECT_EQ(state_->pc(), 0x1000u + 4 * 3);
    EXPECT_EQ(log_.depth(), 3u);
}

TEST_F(RollbackTest, UndoTooDeepPanics)
{
    ScopedThrowOnPanic guard;
    log_.beginInstr(0x1000, 0, 0, 0);
    EXPECT_THROW(log_.undo(2, *state_, mem_), PanicException);
    EXPECT_THROW(log_.undo(0, *state_, mem_), PanicException);
}

TEST_F(RollbackTest, MarksCarryOsState)
{
    log_.beginInstr(0x1000, 55, 0x20000, 7);
    auto mark = log_.undo(1, *state_, mem_);
    EXPECT_EQ(mark.osOutputLen, 55u);
    EXPECT_EQ(mark.osBrk, 0x20000u);
    EXPECT_EQ(mark.osInputPos, 7u);
}

TEST_F(RollbackTest, TrimBoundsHistoryButKeepsHorizon)
{
    // Journal far beyond the horizon; old history is trimmed but at
    // least kHorizon instructions stay undoable.
    for (uint64_t i = 0; i < 2 * RollbackLog::kHorizon + 1000; ++i) {
        log_.beginInstr(i * 4, 0, 0, 0);
        log_.recordReg(3, state_->rawWord(3));
        state_->writeReg(0, 3, i);
    }
    EXPECT_LE(log_.depth(), 2 * RollbackLog::kHorizon + 1000);
    EXPECT_GE(log_.depth(), RollbackLog::kHorizon);

    // Undo a large chunk within the kept horizon.
    size_t n = RollbackLog::kHorizon / 2;
    log_.undo(n, *state_, mem_);
    uint64_t last = 2 * RollbackLog::kHorizon + 1000 - 1;
    EXPECT_EQ(state_->readReg(0, 3), last - n + 1 - 1);
}

TEST_F(RollbackTest, ClearEmptiesJournal)
{
    log_.beginInstr(0x1000, 0, 0, 0);
    log_.recordReg(1, 0);
    log_.clear();
    EXPECT_EQ(log_.depth(), 0u);
    EXPECT_EQ(log_.entryCount(), 0u);
}

} // namespace
} // namespace onespec
