/**
 * @file
 * Shared test helpers: an inline mini-ISA used by front-end and
 * interpreter unit tests, and small convenience wrappers.
 */

#ifndef ONESPEC_TESTS_TESTUTIL_HPP
#define ONESPEC_TESTS_TESTUTIL_HPP

#include <memory>
#include <string>

#include "adl/parser.hpp"
#include "adl/sema.hpp"
#include "adl/spec.hpp"
#include "support/diag.hpp"
#include "support/logging.hpp"

namespace onespec::test {

/**
 * A deliberately small but feature-complete ISA: register file with a zero
 * register, immediate/register formats, loads/stores, a conditional
 * branch, OS entry, and intermediate-value fields at both informational
 * categories.
 */
inline const char *kMiniIsa = R"(
isa mini { bits 64; instr_bytes 4; endian little; }

state {
    regfile R[8] : u64 zero 7;
}

abi {
    syscall_num R[0];
    arg R[1], R[2], R[3];
    ret R[0];
    stack R[6];
}

field effective_addr : u64 decode;
field branch_taken   : u8 decode;
field branch_target  : u64 decode;
field alu_result     : u64;

format RR { op[31:26] ra[25:21] rb[20:16] rc[15:11] }
format RI { op[31:26] ra[25:21] rb[20:16] imm[15:0] }

opclass alu : RR {
    src a = R[ra];
    src b = R[rb];
    dst c = R[rc];
}

instr add : alu match op == 1 {
    action execute { alu_result = a + b; c = alu_result; }
}

instr sub : alu match op == 2 {
    action execute { alu_result = a - b; c = alu_result; }
}

instr mul : alu match op == 3 {
    action execute { alu_result = a * b; c = alu_result; }
}

instr li : RI match op == 8 {
    dst a = R[ra];
    action execute { a = sext16(imm); }
}

instr ldq : RI match op == 9 {
    src base = R[rb];
    dst a = R[ra];
    action execute { effective_addr = base + sext16(imm); }
    action memory  { a = load_u64(effective_addr); }
}

instr stq : RI match op == 10 {
    src base = R[rb];
    src val = R[ra];
    action execute { effective_addr = base + sext16(imm); }
    action memory  { store_u64(effective_addr, val); }
}

instr beq : RI match op == 11 {
    src a2 = R[ra];
    action execute {
        branch_target = pc + 4 + (sext16(imm) << 2);
        branch_taken = a2 == 0;
        if (branch_taken) branch(branch_target);
    }
}

instr br : RI match op == 12 {
    action execute {
        branch_target = pc + 4 + (sext16(imm) << 2);
        branch_taken = 1;
        branch(branch_target);
    }
}

instr sys : RI match op == 62 {
    action memory { syscall_emu(); }
}

instr hlt : RI match op == 63 {
    action execute { halt(); }
}

buildset OneAllNo    { semantic one; info all; speculation off; }
buildset OneMinNo    { semantic one; info min; speculation off; }
buildset OneDecNo    { semantic one; info decode; speculation off; }
buildset OneAllYes   { semantic one; info all; speculation on; }
buildset BlockAllNo  { semantic block; info all; speculation off; }
buildset BlockMinNo  { semantic block; info min; speculation off; }
buildset StepAllNo   { semantic step; info all; speculation off; }
buildset StepAllYes  { semantic step; info all; speculation on; }
)";

/** Parse + analyze a description string; EXPECTs no diagnostics. */
inline std::unique_ptr<Spec>
makeSpec(const std::string &text)
{
    DiagnosticEngine diags;
    Description d = parseString(text, diags);
    if (diags.hasErrors())
        ONESPEC_FATAL("test description failed to parse:\n", diags.str());
    auto spec = analyze(std::move(d), diags);
    if (diags.hasErrors())
        ONESPEC_FATAL("test description failed sema:\n", diags.str());
    return spec;
}

inline std::unique_ptr<Spec>
makeMiniSpec()
{
    return makeSpec(kMiniIsa);
}

} // namespace onespec::test

#endif // ONESPEC_TESTS_TESTUTIL_HPP
