/**
 * @file
 * Tests for the timing substrates (cache, branch predictor) and the four
 * decoupled-organization timing simulators.
 */

#include <gtest/gtest.h>

#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "runtime/context.hpp"
#include "timing/bpred.hpp"
#include "timing/cache.hpp"
#include "timing/functional_first.hpp"
#include "timing/sampling.hpp"
#include "timing/spec_ff.hpp"
#include "timing/timing_directed.hpp"
#include "timing/timing_first.hpp"
#include "workload/kernels.hpp"

namespace onespec {
namespace {

// ---------------------------------------------------------------------
// Cache model
// ---------------------------------------------------------------------

TEST(CacheModel, ColdMissThenHit)
{
    Cache c({1024, 64, 2, 1});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103f)); // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheModel, LruReplacementWithinSet)
{
    // 2-way, 8 sets of 64B lines: addresses 64*8 apart collide.
    Cache c({1024, 64, 2, 1});
    uint64_t a = 0x0000, b = 0x0200, d = 0x0400; // same set
    EXPECT_FALSE(c.access(a));
    EXPECT_FALSE(c.access(b));
    EXPECT_TRUE(c.access(a));  // a is MRU now
    EXPECT_FALSE(c.access(d)); // evicts b (LRU)
    EXPECT_TRUE(c.access(a));
    EXPECT_FALSE(c.access(b)); // b was evicted
}

TEST(CacheModel, WorkingSetSmallerThanCacheHasNoCapacityMisses)
{
    Cache c({32 * 1024, 64, 4, 1});
    for (int round = 0; round < 4; ++round)
        for (uint64_t a = 0; a < 16 * 1024; a += 64)
            c.access(a);
    EXPECT_EQ(c.misses(), 16u * 1024 / 64); // cold misses only
}

TEST(CacheModel, HierarchyLatencies)
{
    CacheHierarchy h({1024, 64, 2, 1}, {1024, 64, 2, 2},
                     {16 * 1024, 64, 4, 10}, 100);
    EXPECT_EQ(h.data(0x5000), 2u + 10 + 100); // cold: all levels miss
    EXPECT_EQ(h.data(0x5000), 2u);            // L1 hit
    // Evict from L1 but not from L2: touch colliding lines.
    for (uint64_t a = 0x10000; a < 0x12000; a += 64)
        h.data(a);
    EXPECT_EQ(h.data(0x5000), 2u + 10); // L1 miss, L2 hit
}

TEST(CacheModel, ResetClearsState)
{
    Cache c({1024, 64, 2, 1});
    c.access(0x0);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.access(0x0));
}

// ---------------------------------------------------------------------
// Branch predictor
// ---------------------------------------------------------------------

TEST(Bpred, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.update(0x1000, true, 0x2000);
    EXPECT_TRUE(bp.predictTaken(0x1000));
    EXPECT_EQ(bp.predictTarget(0x1000), 0x2000u);
    // Steady state: very few mispredicts after warm-up.
    uint64_t before = bp.mispredicts();
    for (int i = 0; i < 100; ++i)
        bp.update(0x1000, true, 0x2000);
    EXPECT_LE(bp.mispredicts() - before, 1u);
}

TEST(Bpred, LearnsAlternatingPatternThroughHistory)
{
    BranchPredictor bp;
    // T N T N ... is perfectly predictable with global history.
    for (int i = 0; i < 2000; ++i)
        bp.update(0x4000, i % 2 == 0, 0x5000);
    uint64_t before = bp.mispredicts();
    for (int i = 0; i < 200; ++i)
        bp.update(0x4000, i % 2 == 0, 0x5000);
    EXPECT_LE(bp.mispredicts() - before, 4u);
}

TEST(Bpred, CountsBranchesAndMispredicts)
{
    BranchPredictor bp;
    bp.update(0x1000, true, 0x9000); // cold: BTB miss counts
    EXPECT_EQ(bp.branches(), 1u);
    EXPECT_EQ(bp.mispredicts(), 1u);
}

// ---------------------------------------------------------------------
// Organizations
// ---------------------------------------------------------------------

class TimingOrgTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        spec_ = loadIsa("alpha64").release();
        auto b = makeBuilder(*spec_);
        prog_ = new Program(buildKernel(*b, "sieve", 2000));
    }
    static void
    TearDownTestSuite()
    {
        delete prog_;
        delete spec_;
    }

    static Spec *spec_;
    static Program *prog_;
};

Spec *TimingOrgTest::spec_ = nullptr;
Program *TimingOrgTest::prog_ = nullptr;

TEST_F(TimingOrgTest, FunctionalFirstProducesPlausibleTiming)
{
    SimContext ctx(*spec_);
    ctx.load(*prog_);
    auto sim = SimRegistry::instance().create(ctx, "BlockDecNo");
    FunctionalFirstModel model(*spec_);
    TimingStats st = model.run(*sim, 100000);
    EXPECT_GT(st.instrs, 10000u);
    EXPECT_GE(st.cycles, st.instrs); // CPI >= 1 for this model
    EXPECT_GT(st.branches, 0u);
    EXPECT_LT(st.ipc(), 1.01);
    EXPECT_GT(st.ipc(), 0.1);
}

TEST_F(TimingOrgTest, FunctionalFirstWorksThroughOneDetailToo)
{
    SimContext ctx(*spec_);
    ctx.load(*prog_);
    auto sim = SimRegistry::instance().create(ctx, "OneDecNo");
    FunctionalFirstModel model(*spec_);
    TimingStats st = model.run(*sim, 50000);
    EXPECT_GT(st.instrs, 10000u);
}

TEST_F(TimingOrgTest, TimingDirectedPipelineStallsOnHazards)
{
    SimContext ctx(*spec_);
    ctx.load(*prog_);
    auto sim = SimRegistry::instance().create(ctx, "StepAllNo");
    TimingDirectedPipeline pipe(*spec_);
    TimingStats st = pipe.run(*sim, 100000);
    EXPECT_GT(st.instrs, 10000u);
    // A 5-stage scalar pipeline with stalls: CPI in a sane band.
    EXPECT_GT(st.cycles, st.instrs);
    EXPECT_LT(st.cycles, st.instrs * 20);
}

TEST_F(TimingOrgTest, TimingDirectedLargerCacheIsFasterOrEqual)
{
    auto run_with = [&](unsigned dcache_bytes) {
        SimContext ctx(*spec_);
        ctx.load(*prog_);
        auto sim = SimRegistry::instance().create(ctx, "StepAllNo");
        TimingDirectedConfig cfg;
        cfg.l1d.sizeBytes = dcache_bytes;
        TimingDirectedPipeline pipe(*spec_, cfg);
        return pipe.run(*sim, 100000);
    };
    TimingStats small = run_with(1024);
    TimingStats big = run_with(64 * 1024);
    EXPECT_EQ(small.instrs, big.instrs);
    EXPECT_GE(small.dcacheMisses, big.dcacheMisses);
    EXPECT_GE(small.cycles, big.cycles);
}

TEST_F(TimingOrgTest, TimingFirstDetectsEveryInjectedBug)
{
    SimContext tctx(*spec_), cctx(*spec_);
    tctx.load(*prog_);
    cctx.load(*prog_);
    auto timing = SimRegistry::instance().create(tctx, "OneMinNo");
    auto checker = SimRegistry::instance().create(cctx, "OneMinNo");
    TimingFirstConfig cfg;
    cfg.injectBugEvery = 1000;
    TimingFirstModel model(cfg);
    TimingStats st = model.run(*timing, *checker, 20000);
    EXPECT_EQ(st.instrs, 20000u);
    // Every injected corruption is caught (some injections may coincide
    // with a value the instruction was about to produce anyway, so allow
    // a small shortfall but no overcount).
    EXPECT_LE(st.mismatches, 20u);
    EXPECT_GE(st.mismatches, 18u);
}

TEST_F(TimingOrgTest, TimingFirstCleanRunHasNoMismatches)
{
    SimContext tctx(*spec_), cctx(*spec_);
    tctx.load(*prog_);
    cctx.load(*prog_);
    auto timing = SimRegistry::instance().create(tctx, "OneMinNo");
    auto checker = SimRegistry::instance().create(cctx, "OneMinNo");
    TimingFirstModel model{TimingFirstConfig{}};
    TimingStats st = model.run(*timing, *checker, 20000);
    EXPECT_EQ(st.mismatches, 0u);
}

TEST_F(TimingOrgTest, SpecFFRollsBackAndStillComputesCorrectly)
{
    SimContext ctx(*spec_);
    ctx.load(*prog_);
    auto sim = SimRegistry::instance().create(ctx, "BlockDecYes");
    SpecFFConfig cfg;
    cfg.violationEvery = 500;
    cfg.squashDepth = 16;
    SpecFunctionalFirstModel model(cfg);
    TimingStats st = model.run(*sim, 100'000'000);
    EXPECT_GT(st.rollbacks, 10u);
    EXPECT_EQ(st.rolledBackInstrs, st.rollbacks * 16);
    // Despite all the rollbacks, the program completed correctly.
    EXPECT_EQ(ctx.os().output(), goldenOutput("sieve", 2000));
}

TEST_F(TimingOrgTest, SamplingEstimatesCpiNearReference)
{
    SimContext ref(*spec_);
    ref.load(*prog_);
    auto det_ref = SimRegistry::instance().create(ref, "StepAllNo");
    TimingDirectedPipeline pipe(*spec_);
    TimingStats full = pipe.run(*det_ref, 200000);
    double full_cpi =
        static_cast<double>(full.cycles) / static_cast<double>(full.instrs);

    SimContext ctx(*spec_);
    ctx.load(*prog_);
    auto det = SimRegistry::instance().create(ctx, "StepAllNo");
    auto fast = SimRegistry::instance().create(ctx, "BlockMinNo");
    SamplingConfig cfg;
    cfg.windowInstrs = 2000;
    cfg.periodInstrs = 10000;
    SamplingStats st = runSampled(*spec_, *det, *fast, cfg, 200000);
    EXPECT_GE(st.windows, 3u);
    EXPECT_GT(st.fastForwarded, st.detailed.instrs);
    EXPECT_NEAR(st.estimatedCpi(), full_cpi, full_cpi * 0.35);
}

} // namespace
} // namespace onespec
