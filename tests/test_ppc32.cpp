/**
 * @file
 * Instruction-level semantics tests for the ppc32 description: record
 * forms, CR fields, XER carry, CTR branches, update-form memory ops, and
 * big-endian data layout.
 */

#include <gtest/gtest.h>

#include "adl/encode.hpp"
#include "isa/isa.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"

namespace onespec {
namespace {

// CR0 bits in our (conventional) numbering: LT=31 GT=30 EQ=29 SO=28.
constexpr uint32_t kLt = 1u << 31;
constexpr uint32_t kGt = 1u << 30;
constexpr uint32_t kEq = 1u << 29;
constexpr uint32_t kCa = 1u << 29; // XER.CA

class Ppc32Test : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { spec_ = loadIsa("ppc32").release(); }
    static void TearDownTestSuite()
    {
        delete spec_;
        spec_ = nullptr;
    }

    void
    SetUp() override
    {
        ctx_ = std::make_unique<SimContext>(*spec_);
        crIdx_ = spec_->state.scalarIndex("CR");
        lrIdx_ = spec_->state.scalarIndex("LR");
        ctrIdx_ = spec_->state.scalarIndex("CTR");
        xerIdx_ = spec_->state.scalarIndex("XER");
    }

    RunStatus
    run1(uint32_t w)
    {
        // Memory::write applies the ISA's (big-endian) byte order.
        FaultKind f = FaultKind::None;
        ctx_->mem().write(0x8000, w, 4, f);
        ctx_->state().setPc(0x8000);
        auto sim = makeInterpSimulator(*ctx_, "OneAllNo");
        lastDi_ = DynInst{};
        return sim->execute(lastDi_);
    }

    uint32_t reg(unsigned i) const
    {
        return static_cast<uint32_t>(ctx_->state().readReg(0, i));
    }
    void setReg(unsigned i, uint32_t v) { ctx_->state().writeReg(0, i, v); }
    uint32_t cr() const
    {
        return static_cast<uint32_t>(ctx_->state().readScalar(crIdx_));
    }
    uint32_t xer() const
    {
        return static_cast<uint32_t>(ctx_->state().readScalar(xerIdx_));
    }
    void setXer(uint32_t v) { ctx_->state().writeScalar(xerIdx_, v); }
    uint32_t lr() const
    {
        return static_cast<uint32_t>(ctx_->state().readScalar(lrIdx_));
    }
    void setCtr(uint32_t v) { ctx_->state().writeScalar(ctrIdx_, v); }
    uint32_t ctr() const
    {
        return static_cast<uint32_t>(ctx_->state().readScalar(ctrIdx_));
    }

    uint32_t
    xo(const char *op, unsigned rt, unsigned ra, unsigned rb,
       unsigned rc = 0)
    {
        return mustEncode(*spec_, op,
                          {{"rt", rt}, {"ra", ra}, {"rb", rb},
                           {"rc", rc}});
    }

    static Spec *spec_;
    std::unique_ptr<SimContext> ctx_;
    DynInst lastDi_;
    int crIdx_ = -1, lrIdx_ = -1, ctrIdx_ = -1, xerIdx_ = -1;
};

Spec *Ppc32Test::spec_ = nullptr;

TEST_F(Ppc32Test, DescriptionLoads)
{
    EXPECT_EQ(spec_->props.name, "ppc32");
    EXPECT_FALSE(spec_->props.littleEndian);
    EXPECT_GE(spec_->instrs.size(), 70u);
}

TEST_F(Ppc32Test, AddiWithR0MeansLiteral)
{
    setReg(0, 999);
    run1(mustEncode(*spec_, "addi",
                    {{"rt", 3}, {"ra", 0}, {"dimm", 42}}));
    EXPECT_EQ(reg(3), 42u); // ra==0 reads as literal 0, not R0

    setReg(4, 100);
    run1(mustEncode(*spec_, "addi",
                    {{"rt", 3}, {"ra", 4}, {"dimm", 0xffff}}));
    EXPECT_EQ(reg(3), 99u); // sign-extended -1
}

TEST_F(Ppc32Test, AddisAndOriBuildConstants)
{
    run1(mustEncode(*spec_, "addis",
                    {{"rt", 3}, {"ra", 0}, {"dimm", 0xdead}}));
    run1(mustEncode(*spec_, "ori",
                    {{"rt", 3}, {"ra", 3}, {"dimm", 0xbeef}}));
    EXPECT_EQ(reg(3), 0xdeadbeefu);
}

TEST_F(Ppc32Test, RecordFormUpdatesCr0)
{
    setReg(4, 5);
    setReg(5, 10);
    run1(xo("subf", 3, 5, 4, 1)); // rt = rb - ra = 5 - 10 (dotted)
    EXPECT_EQ(reg(3), static_cast<uint32_t>(-5));
    EXPECT_TRUE(cr() & kLt);
    EXPECT_FALSE(cr() & kGt);
    EXPECT_FALSE(cr() & kEq);

    run1(xo("subf", 3, 4, 4, 1)); // 5 - 5 = 0
    EXPECT_TRUE(cr() & kEq);
}

TEST_F(Ppc32Test, NonRecordFormLeavesCrAlone)
{
    ctx_->state().writeScalar(crIdx_, 0x12345678);
    setReg(4, 1);
    setReg(5, 2);
    run1(xo("add", 3, 4, 5, 0));
    EXPECT_EQ(cr(), 0x12345678u);
}

TEST_F(Ppc32Test, CarryChainAddcAdde)
{
    setReg(4, 0xffffffff);
    setReg(5, 1);
    run1(xo("addc", 3, 4, 5));
    EXPECT_EQ(reg(3), 0u);
    EXPECT_TRUE(xer() & kCa);

    setReg(6, 10);
    setReg(7, 20);
    run1(xo("adde", 3, 6, 7)); // 10 + 20 + CA(1)
    EXPECT_EQ(reg(3), 31u);
    EXPECT_FALSE(xer() & kCa);
}

TEST_F(Ppc32Test, SubficAndAddze)
{
    setReg(4, 3);
    run1(mustEncode(*spec_, "subfic",
                    {{"rt", 3}, {"ra", 4}, {"dimm", 10}}));
    EXPECT_EQ(reg(3), 7u);
    EXPECT_TRUE(xer() & kCa); // 10 >= 3: no borrow

    setReg(5, 100);
    run1(xo("addze", 3, 5, 0));
    EXPECT_EQ(reg(3), 101u);
}

TEST_F(Ppc32Test, MultiplyFamily)
{
    setReg(4, 0x10000);
    setReg(5, 0x10000);
    run1(xo("mullw", 3, 4, 5));
    EXPECT_EQ(reg(3), 0u);
    run1(xo("mulhwu", 3, 4, 5));
    EXPECT_EQ(reg(3), 1u);
    setReg(4, static_cast<uint32_t>(-2));
    setReg(5, 3);
    run1(xo("mulhw", 3, 4, 5));
    EXPECT_EQ(reg(3), 0xffffffffu); // high word of -6
}

TEST_F(Ppc32Test, DivideFamily)
{
    setReg(4, static_cast<uint32_t>(-7));
    setReg(5, 2);
    run1(xo("divw", 3, 4, 5));
    EXPECT_EQ(reg(3), static_cast<uint32_t>(-3));
    run1(xo("divwu", 3, 4, 5));
    EXPECT_EQ(reg(3), 0x7ffffffcu);
    // Divide by zero yields 0 deterministically.
    setReg(5, 0);
    run1(xo("divw", 3, 4, 5));
    EXPECT_EQ(reg(3), 0u);
}

TEST_F(Ppc32Test, LogicalOpsWithSwappedSourceField)
{
    setReg(4, 0xf0f0);  // rs (travels in rt field)
    setReg(5, 0xff00);  // rb
    // and ra, rs, rb: rs in rt-field, dest in ra-field
    run1(mustEncode(*spec_, "and",
                    {{"rt", 4}, {"ra", 3}, {"rb", 5}, {"rc", 0}}));
    EXPECT_EQ(reg(3), 0xf000u);
    run1(mustEncode(*spec_, "nor",
                    {{"rt", 4}, {"ra", 3}, {"rb", 5}, {"rc", 0}}));
    EXPECT_EQ(reg(3), ~0xfff0u);
}

TEST_F(Ppc32Test, RlwinmMasks)
{
    setReg(4, 0x12345678);
    // slwi 8: rlwinm 3,4,8,0,23
    run1(mustEncode(*spec_, "rlwinm",
                    {{"rt", 4}, {"ra", 3}, {"sh", 8}, {"mb", 0},
                     {"me", 23}, {"rc", 0}}));
    EXPECT_EQ(reg(3), 0x34567800u);
    // srwi 16: rlwinm 3,4,16,16,31
    run1(mustEncode(*spec_, "rlwinm",
                    {{"rt", 4}, {"ra", 3}, {"sh", 16}, {"mb", 16},
                     {"me", 31}, {"rc", 0}}));
    EXPECT_EQ(reg(3), 0x1234u);
    // wrap-around mask (mb > me): extract rotated bits outside the hole
    run1(mustEncode(*spec_, "rlwinm",
                    {{"rt", 4}, {"ra", 3}, {"sh", 0}, {"mb", 24},
                     {"me", 7}, {"rc", 0}}));
    EXPECT_EQ(reg(3), 0x12000078u);
}

TEST_F(Ppc32Test, RlwimiInserts)
{
    setReg(4, 0x000000ff); // rs
    setReg(3, 0x12345678); // ra old value
    // insert rs<<8 into bits [15:8]: rlwimi 3,4,8,16,23
    run1(mustEncode(*spec_, "rlwimi",
                    {{"rt", 4}, {"ra", 3}, {"sh", 8}, {"mb", 16},
                     {"me", 23}, {"rc", 0}}));
    EXPECT_EQ(reg(3), 0x1234ff78u);
}

TEST_F(Ppc32Test, CompareWritesSelectedCrField)
{
    setReg(4, 5);
    run1(mustEncode(*spec_, "cmpwi",
                    {{"crfd", 2}, {"ra", 4}, {"simm", 10}}));
    // CR field 2 occupies bits [23:20]; LT of field 2 = bit 23.
    EXPECT_TRUE(cr() & (1u << 23));
    // Other fields untouched (were zero).
    EXPECT_EQ(cr() & 0xf0000000, 0u);

    setReg(5, 0xffffffff);
    run1(mustEncode(*spec_, "cmplwi",
                    {{"crfd", 0}, {"ra", 5}, {"simm", 1}}));
    EXPECT_TRUE(cr() & kGt); // unsigned: 0xffffffff > 1
    run1(mustEncode(*spec_, "cmpwi",
                    {{"crfd", 0}, {"ra", 5}, {"simm", 1}}));
    EXPECT_TRUE(cr() & kLt); // signed: -1 < 1
}

TEST_F(Ppc32Test, BranchConditionalOnCrBit)
{
    setReg(4, 7);
    run1(mustEncode(*spec_, "cmpwi",
                    {{"crfd", 0}, {"ra", 4}, {"simm", 7}}));
    EXPECT_TRUE(cr() & kEq);
    // beq: bo=12 (branch if true), bi=2 (EQ of cr0), bd=+4 words
    run1(mustEncode(*spec_, "bc",
                    {{"bo", 12}, {"bi", 2}, {"bd", 4}, {"aa", 0},
                     {"lk", 0}}));
    EXPECT_TRUE(lastDi_.branchTaken());
    EXPECT_EQ(ctx_->state().pc(), 0x8010u);
    // bne: bo=4 (branch if false) -- not taken here
    run1(mustEncode(*spec_, "bc",
                    {{"bo", 4}, {"bi", 2}, {"bd", 4}, {"aa", 0},
                     {"lk", 0}}));
    EXPECT_FALSE(lastDi_.branchTaken());
    EXPECT_EQ(ctx_->state().pc(), 0x8004u);
}

TEST_F(Ppc32Test, BdnzDecrementsCtr)
{
    setCtr(3);
    // bdnz: bo=16 (decrement, branch if ctr != 0)
    uint32_t bdnz = mustEncode(*spec_, "bc",
                               {{"bo", 16}, {"bi", 0}, {"bd", 8},
                                {"aa", 0}, {"lk", 0}});
    run1(bdnz);
    EXPECT_EQ(ctr(), 2u);
    EXPECT_TRUE(lastDi_.branchTaken());
    setCtr(1);
    run1(bdnz);
    EXPECT_EQ(ctr(), 0u);
    EXPECT_FALSE(lastDi_.branchTaken());
}

TEST_F(Ppc32Test, BranchAndLinkThroughLr)
{
    run1(mustEncode(*spec_, "b",
                    {{"li", 4}, {"aa", 0}, {"lk", 1}}));
    EXPECT_EQ(lr(), 0x8004u);
    EXPECT_EQ(ctx_->state().pc(), 0x8010u);
    // blr: bclr with bo=20 (always)
    ctx_->state().writeScalar(lrIdx_, 0x9000);
    run1(mustEncode(*spec_, "bclr",
                    {{"bo", 20}, {"bi", 0}, {"lk", 0}}));
    EXPECT_EQ(ctx_->state().pc(), 0x9000u);
}

TEST_F(Ppc32Test, SprMoves)
{
    setReg(4, 0x1234);
    run1(mustEncode(*spec_, "mtlr", {{"rt", 4}}));
    EXPECT_EQ(lr(), 0x1234u);
    run1(mustEncode(*spec_, "mflr", {{"rt", 5}}));
    EXPECT_EQ(reg(5), 0x1234u);
    setReg(6, 77);
    run1(mustEncode(*spec_, "mtctr", {{"rt", 6}}));
    EXPECT_EQ(ctr(), 77u);
    ctx_->state().writeScalar(crIdx_, 0xabcd0123);
    run1(mustEncode(*spec_, "mfcr", {{"rt", 7}}));
    EXPECT_EQ(reg(7), 0xabcd0123u);
}

TEST_F(Ppc32Test, BigEndianLoadsAndStores)
{
    setReg(4, 0x20000);
    setReg(5, 0x11223344);
    run1(mustEncode(*spec_, "stw",
                    {{"rt", 5}, {"ra", 4}, {"dimm", 0}}));
    // Byte order in memory is big-endian.
    EXPECT_EQ(ctx_->mem().readByte(0x20000), 0x11);
    EXPECT_EQ(ctx_->mem().readByte(0x20003), 0x44);
    run1(mustEncode(*spec_, "lhz",
                    {{"rt", 6}, {"ra", 4}, {"dimm", 2}}));
    EXPECT_EQ(reg(6), 0x3344u);
    run1(mustEncode(*spec_, "lha",
                    {{"rt", 6}, {"ra", 4}, {"dimm", 0}}));
    EXPECT_EQ(reg(6), 0x1122u);
    run1(mustEncode(*spec_, "lbz",
                    {{"rt", 6}, {"ra", 4}, {"dimm", 1}}));
    EXPECT_EQ(reg(6), 0x22u);
}

TEST_F(Ppc32Test, UpdateFormsWriteBase)
{
    FaultKind f = FaultKind::None;
    ctx_->mem().write(0x20010, 0x55, 4, f);
    setReg(4, 0x20000);
    run1(mustEncode(*spec_, "lwzu",
                    {{"rt", 5}, {"ra", 4}, {"dimm", 0x10}}));
    EXPECT_EQ(reg(5), 0x55u);
    EXPECT_EQ(reg(4), 0x20010u); // base updated

    setReg(6, 0x99);
    run1(mustEncode(*spec_, "stwu",
                    {{"rt", 6}, {"ra", 4}, {"dimm", 0x10}}));
    EXPECT_EQ(reg(4), 0x20020u);
    EXPECT_EQ(ctx_->mem().read(0x20020, 4, f), 0x99u);
}

TEST_F(Ppc32Test, IndexedLoadsStores)
{
    FaultKind f = FaultKind::None;
    setReg(4, 0x20000);
    setReg(5, 0x30);
    setReg(6, 0xabcd);
    run1(mustEncode(*spec_, "stwx",
                    {{"rt", 6}, {"ra", 4}, {"rb", 5}, {"rc", 0}}));
    EXPECT_EQ(ctx_->mem().read(0x20030, 4, f), 0xabcdu);
    run1(mustEncode(*spec_, "lwzx",
                    {{"rt", 7}, {"ra", 4}, {"rb", 5}, {"rc", 0}}));
    EXPECT_EQ(reg(7), 0xabcdu);
}

TEST_F(Ppc32Test, ShiftsWithCarry)
{
    setReg(4, static_cast<uint32_t>(-8)); // rs
    run1(mustEncode(*spec_, "srawi",
                    {{"rt", 4}, {"ra", 3}, {"rb", 2}, {"rc", 0}}));
    EXPECT_EQ(reg(3), static_cast<uint32_t>(-2));
    // -8 >> 2 loses no 1-bits: CA clear.
    EXPECT_FALSE(xer() & kCa);
    setReg(4, static_cast<uint32_t>(-7));
    run1(mustEncode(*spec_, "srawi",
                    {{"rt", 4}, {"ra", 3}, {"rb", 1}, {"rc", 0}}));
    EXPECT_EQ(reg(3), static_cast<uint32_t>(-4));
    EXPECT_TRUE(xer() & kCa); // a 1 fell off a negative value
}

TEST_F(Ppc32Test, ExtendAndCount)
{
    setReg(4, 0x80);
    run1(mustEncode(*spec_, "extsb",
                    {{"rt", 4}, {"ra", 3}, {"rb", 0}, {"rc", 0}}));
    EXPECT_EQ(reg(3), 0xffffff80u);
    setReg(4, 0x00010000);
    run1(mustEncode(*spec_, "cntlzw",
                    {{"rt", 4}, {"ra", 3}, {"rb", 0}, {"rc", 0}}));
    EXPECT_EQ(reg(3), 15u);
}

TEST_F(Ppc32Test, CrLogicalOps)
{
    // Set CR bit 31 (our numbering; PPC bit 0 = cr0.LT) and bit 29 (EQ).
    ctx_->state().writeScalar(crIdx_, kLt | kEq);
    auto crl = [&](const char *op, unsigned d, unsigned a, unsigned b) {
        return mustEncode(*spec_, op,
                          {{"crbd", d}, {"crba", a}, {"crbb", b}});
    };
    // crand 4, 0, 2: bit4 <- LT(1) & EQ(1) = 1
    run1(crl("crand", 4, 0, 2));
    EXPECT_TRUE(cr() & (1u << 27));
    // crxor 4, 0, 2: 1 ^ 1 = 0
    run1(crl("crxor", 4, 0, 2));
    EXPECT_FALSE(cr() & (1u << 27));
    // cror 5, 1, 2: GT(0) | EQ(1) = 1
    run1(crl("cror", 5, 1, 2));
    EXPECT_TRUE(cr() & (1u << 26));
    // crnor 6, 1, 3: ~(0|0) = 1
    run1(crl("crnor", 6, 1, 3));
    EXPECT_TRUE(cr() & (1u << 25));
    // crandc 7, 0, 1: LT & ~GT = 1
    run1(crl("crandc", 7, 0, 1));
    EXPECT_TRUE(cr() & (1u << 24));
    // creqv 8, 1, 3: ~(0^0) = 1
    run1(crl("creqv", 8, 1, 3));
    EXPECT_TRUE(cr() & (1u << 23));
    // crnand 9, 0, 2: ~(1&1) = 0
    run1(crl("crnand", 9, 0, 2));
    EXPECT_FALSE(cr() & (1u << 22));
    // crorc 10, 1, 1: 0 | ~0 = 1
    run1(crl("crorc", 10, 1, 1));
    EXPECT_TRUE(cr() & (1u << 21));
}

TEST_F(Ppc32Test, McrfCopiesField)
{
    ctx_->state().writeScalar(crIdx_, 0xa0000000); // cr0 = 0b1010
    run1(mustEncode(*spec_, "mcrf", {{"crfd", 3}, {"crfs", 0}}));
    // Field 3 occupies bits [19:16].
    EXPECT_EQ((cr() >> 16) & 0xf, 0xau);
    // Source field unchanged.
    EXPECT_EQ((cr() >> 28) & 0xf, 0xau);
}

} // namespace
} // namespace onespec
