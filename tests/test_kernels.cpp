/**
 * @file
 * Workload-kernel validation on the interpreter back end: every kernel on
 * every ISA must produce the golden output through the reference
 * (One/All/No) interface.
 */

#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "workload/kernels.hpp"

namespace onespec {
namespace {

struct Case
{
    std::string isa;
    std::string kernel;
};

class KernelTest : public ::testing::TestWithParam<Case>
{
};

uint64_t
kernelTestParam(const std::string &kernel)
{
    if (kernel == "fib")
        return 90;
    if (kernel == "sieve")
        return 500;
    if (kernel == "matmul")
        return 8;
    if (kernel == "shellsort")
        return 64;
    if (kernel == "strhash")
        return 128;
    if (kernel == "crc32")
        return 64;
    if (kernel == "listsum")
        return 97;
    return 16;
}

TEST_P(KernelTest, MatchesGoldenOnInterpreter)
{
    const Case &c = GetParam();
    auto spec = loadIsa(c.isa);
    uint64_t param = kernelTestParam(c.kernel);

    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, c.kernel, param);

    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    RunResult rr = sim->run(200'000'000);
    ASSERT_EQ(rr.status, RunStatus::Halted)
        << "kernel did not exit cleanly; instrs=" << rr.instrs;
    EXPECT_EQ(ctx.os().exitCode(), 0);
    EXPECT_EQ(ctx.os().output(), goldenOutput(c.kernel, param));
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto &isa : shippedIsas())
        for (const auto &k : kernelNames())
            cases.push_back({isa, k});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllIsas, KernelTest,
                         ::testing::ValuesIn(allCases()),
                         [](const auto &info) {
                             return info.param.isa + "_" +
                                    info.param.kernel;
                         });

} // namespace
} // namespace onespec
