/**
 * @file
 * Validation of the synthesized simulators:
 *
 *  - every (ISA x buildset) generated simulator produces the same output
 *    and final architectural state as the reference interpreter on every
 *    kernel (the two back ends are derived from the same specification,
 *    so any divergence is a synthesis bug);
 *  - the paper's Section V-D rotating-interface validation: a single run
 *    that switches interfaces on a rotating basis per call validates all
 *    interfaces at once;
 *  - speculation support: undo() on generated simulators.
 */

#include <gtest/gtest.h>

#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "workload/kernels.hpp"

namespace onespec {
namespace {

uint64_t
smallParam(const std::string &kernel)
{
    if (kernel == "fib")
        return 64;
    if (kernel == "sieve")
        return 300;
    if (kernel == "matmul")
        return 6;
    if (kernel == "shellsort")
        return 48;
    if (kernel == "strhash")
        return 96;
    if (kernel == "crc32")
        return 48;
    if (kernel == "listsum")
        return 61;
    return 16;
}

struct IsaFixtureState
{
    std::unique_ptr<Spec> spec;
    std::vector<std::pair<std::string, Program>> programs;
};

IsaFixtureState *
stateFor(const std::string &isa)
{
    static std::map<std::string, std::unique_ptr<IsaFixtureState>> cache;
    auto &slot = cache[isa];
    if (!slot) {
        slot = std::make_unique<IsaFixtureState>();
        slot->spec = loadIsa(isa);
        for (const auto &k : kernelNames()) {
            auto b = makeBuilder(*slot->spec);
            slot->programs.emplace_back(
                k, buildKernel(*b, k, smallParam(k)));
        }
    }
    return slot.get();
}

class GeneratedTest : public ::testing::TestWithParam<std::string>
{
};

/** Run @p prog to completion on @p sim; return (status, instrs). */
RunResult
runAll(FunctionalSimulator &sim, uint64_t cap = 100'000'000)
{
    return sim.run(cap);
}

TEST_P(GeneratedTest, EveryBuildsetMatchesInterpreter)
{
    IsaFixtureState *st = stateFor(GetParam());
    const Spec &spec = *st->spec;

    for (const auto &[kname, prog] : st->programs) {
        // Reference run.
        SimContext ref(spec);
        ref.load(prog);
        auto isim = makeInterpSimulator(ref, "OneAllNo");
        RunResult rref = runAll(*isim);
        ASSERT_EQ(rref.status, RunStatus::Halted) << kname;
        std::string golden = goldenOutput(kname, smallParam(kname));
        ASSERT_EQ(ref.os().output(), golden) << kname;

        for (const auto &bs : spec.buildsets) {
            SimContext ctx(spec);
            ctx.load(prog);
            auto gsim = SimRegistry::instance().create(ctx, bs.name);
            ASSERT_NE(gsim, nullptr)
                << "no generated simulator for " << bs.name;
            RunResult rr = runAll(*gsim);
            EXPECT_EQ(rr.status, RunStatus::Halted)
                << kname << "/" << bs.name;
            EXPECT_EQ(rr.instrs, rref.instrs) << kname << "/" << bs.name;
            EXPECT_EQ(ctx.os().output(), golden)
                << kname << "/" << bs.name;
            EXPECT_TRUE(ctx.state() == ref.state())
                << kname << "/" << bs.name
                << ": final architectural state differs";
        }

        // Interpreter honoring each buildset must agree as well.
        for (const auto &bs : spec.buildsets) {
            SimContext ctx(spec);
            ctx.load(prog);
            auto sim = makeInterpSimulator(ctx, bs.name);
            RunResult rr = runAll(*sim);
            EXPECT_EQ(rr.status, RunStatus::Halted)
                << kname << "/interp/" << bs.name;
            EXPECT_EQ(ctx.os().output(), golden)
                << kname << "/interp/" << bs.name;
            EXPECT_TRUE(ctx.state() == ref.state())
                << kname << "/interp/" << bs.name;
        }
    }
}

TEST_P(GeneratedTest, RotatingInterfaceValidation)
{
    // The paper's validation procedure: call the interfaces on a rotating
    // basis -- each dynamic instruction (or basic block) uses a different
    // interface than the previous one -- validating every interface in a
    // single run.
    IsaFixtureState *st = stateFor(GetParam());
    const Spec &spec = *st->spec;

    for (const auto &[kname, prog] : st->programs) {
        SimContext ctx(spec);
        ctx.load(prog);

        std::vector<std::unique_ptr<FunctionalSimulator>> sims;
        for (const auto &bs : spec.buildsets)
            sims.push_back(SimRegistry::instance().create(ctx, bs.name));

        std::string golden = goldenOutput(kname, smallParam(kname));
        uint64_t instrs = 0;
        RunStatus status = RunStatus::Ok;
        size_t turn = 0;
        DynInst di;
        DynInst block[64];
        while (status == RunStatus::Ok && instrs < 100'000'000) {
            FunctionalSimulator &sim = *sims[turn % sims.size()];
            ++turn;
            const BuildsetInfo &bs = sim.buildset();
            switch (bs.semantic) {
              case SemanticLevel::Block: {
                unsigned n = sim.executeBlock(block, 64, status);
                instrs += n;
                break;
              }
              case SemanticLevel::One:
                status = sim.execute(di);
                ++instrs;
                break;
              case SemanticLevel::Step: {
                for (unsigned s = 0; s < kNumSteps; ++s) {
                    status = sim.step(static_cast<Step>(s), di);
                    if (status != RunStatus::Ok)
                        break;
                }
                ++instrs;
                break;
              }
              case SemanticLevel::Custom: {
                for (unsigned e = 0;
                     e < bs.entrypoints.size() && status == RunStatus::Ok;
                     ++e) {
                    status = sim.call(e, di);
                }
                ++instrs;
                break;
              }
            }
        }
        EXPECT_EQ(status, RunStatus::Halted) << kname;
        EXPECT_EQ(ctx.os().output(), golden) << kname;
    }
}

TEST_P(GeneratedTest, GeneratedUndoRestoresState)
{
    IsaFixtureState *st = stateFor(GetParam());
    const Spec &spec = *st->spec;
    const auto &prog = st->programs.front().second; // fib

    SimContext ctx(spec);
    ctx.load(prog);
    auto sim = SimRegistry::instance().create(ctx, "OneAllYes");
    ASSERT_NE(sim, nullptr);

    DynInst di;
    for (int i = 0; i < 20; ++i)
        ASSERT_EQ(sim->execute(di), RunStatus::Ok);

    // Snapshot, run 10 more, undo 10, compare.
    std::vector<uint64_t> snap;
    for (unsigned i = 0; i < ctx.state().numWords(); ++i)
        snap.push_back(ctx.state().rawWord(i));
    uint64_t pc_snap = ctx.state().pc();

    for (int i = 0; i < 10; ++i)
        ASSERT_EQ(sim->execute(di), RunStatus::Ok);
    sim->undo(10);

    EXPECT_EQ(ctx.state().pc(), pc_snap);
    for (unsigned i = 0; i < ctx.state().numWords(); ++i)
        EXPECT_EQ(ctx.state().rawWord(i), snap[i]) << "word " << i;
}

TEST_P(GeneratedTest, FastForwardMatchesExecute)
{
    IsaFixtureState *st = stateFor(GetParam());
    const Spec &spec = *st->spec;
    const auto &prog = st->programs[1].second; // sieve

    SimContext a(spec), b(spec);
    a.load(prog);
    b.load(prog);
    auto fast = SimRegistry::instance().create(a, "BlockMinNo");
    auto ref = SimRegistry::instance().create(b, "OneAllNo");
    ASSERT_NE(fast, nullptr);
    ASSERT_NE(ref, nullptr);

    RunStatus st1 = RunStatus::Ok;
    uint64_t n1 = fast->fastForward(5000, st1);
    RunResult r2 = ref->run(5000);
    EXPECT_EQ(n1, r2.instrs);
    EXPECT_TRUE(a.state() == b.state());
}

INSTANTIATE_TEST_SUITE_P(AllIsas, GeneratedTest,
                         ::testing::ValuesIn(shippedIsas()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace onespec
