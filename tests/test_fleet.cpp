/**
 * @file
 * SimFleet tests: determinism under parallelism (the N-thread run must
 * be bit-identical to the 1-thread run, per job and in the merged
 * stats), work-stealing pool behavior, and a ThreadSanitizer-friendly
 * stress case of many short jobs.  Run these under TSan via
 * `-DONESPEC_SANITIZE=thread` + `ctest -L tsan` (docs/BENCHMARKING.md).
 */

#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "parallel/fleet.hpp"
#include "parallel/threadpool.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

namespace onespec {
namespace {

using parallel::FleetJob;
using parallel::FleetReport;
using parallel::SimFleet;
using parallel::ThreadPool;

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTaskExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int kTasks = 500;
    std::vector<std::atomic<int>> ran(kTasks);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&ran, i] { ran[i].fetch_add(1); });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(ran[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, WorkStealingSpreadsLoadAcrossWorkers)
{
    // Round-robin placement puts every 4th task on worker 0's deque; if
    // nobody stole, a batch would serialize behind one long task.  With
    // stealing, the batch of sleeps finishes near the ideal wall time.
    ThreadPool pool(4);
    std::set<std::thread::id> seen;
    std::mutex m;
    for (int i = 0; i < 64; ++i) {
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            std::lock_guard<std::mutex> lock(m);
            seen.insert(std::this_thread::get_id());
        });
    }
    pool.wait();
    EXPECT_GE(seen.size(), 2u) << "tasks never ran on a second worker";
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> n{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&n] { n.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(n.load(), (batch + 1) * 10);
    }
}

TEST(ThreadPool, ResizeDrainsThenRebuildsAtEveryWidth)
{
    // Drain-and-resize between batches (the service daemon's pattern:
    // dispatcher paused, pool quiescent).  Every task submitted before a
    // resize must have fully finished before it, and batches after the
    // resize run at the new width.  Carries the tsan label via the
    // test_fleet suite: re-run under -DONESPEC_SANITIZE=thread.
    ThreadPool pool(1);
    std::atomic<int> n{0};
    int expected = 0;
    auto submitBatch = [&] {
        for (int i = 0; i < 32; ++i)
            pool.submit([&n] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                n.fetch_add(1);
            });
        expected += 32;
    };
    for (unsigned width : {4u, 1u, 2u, 3u}) {
        submitBatch();
        pool.resize(width); // implies wait(): the batch is done after
        EXPECT_EQ(n.load(), expected) << "resize to " << width
                                      << " lost or duplicated tasks";
        EXPECT_EQ(pool.size(), width);
    }
    // Same-width resize is a documented no-op: it neither drains nor
    // rebuilds, so the batch is only done after an explicit wait().
    submitBatch();
    pool.resize(3);
    pool.wait();
    EXPECT_EQ(n.load(), expected);
    EXPECT_EQ(pool.size(), 3u);
    // The rebuilt pool still spreads work across its new workers.
    std::set<std::thread::id> seen;
    std::mutex m;
    for (int i = 0; i < 48; ++i)
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            std::lock_guard<std::mutex> lock(m);
            seen.insert(std::this_thread::get_id());
        });
    pool.wait();
    EXPECT_GE(seen.size(), 2u) << "post-resize pool never used a second "
                                  "worker";
}

// ---------------------------------------------------------------------
// SimFleet determinism
// ---------------------------------------------------------------------

/** Shared fixture state: specs and programs are expensive to build, so
 *  construct once and share read-only (exactly how fleet callers do). */
class FleetTest : public ::testing::Test
{
  protected:
    struct IsaBatch
    {
        std::unique_ptr<Spec> spec;
        std::vector<std::pair<std::string, Program>> programs;
    };

    static void
    SetUpTestSuite()
    {
        batches_ = new std::vector<IsaBatch>();
        for (const auto &isa : shippedIsas()) {
            IsaBatch b;
            b.spec = loadIsa(isa);
            for (const char *k : {"fib", "crc32", "listsum"}) {
                auto builder = makeBuilder(*b.spec);
                // Small scales: whole suite must be TSan-viable.
                b.programs.emplace_back(k, buildKernel(*builder, k, 500));
            }
            batches_->push_back(std::move(b));
        }
    }

    static void
    TearDownTestSuite()
    {
        delete batches_;
        batches_ = nullptr;
    }

    static std::vector<FleetJob>
    makeJobs(const std::string &buildset, int copies = 1,
             uint64_t max_instrs = ~uint64_t{0})
    {
        std::vector<FleetJob> jobs;
        for (int c = 0; c < copies; ++c) {
            for (const auto &b : *batches_) {
                for (const auto &[kname, prog] : b.programs) {
                    FleetJob j;
                    j.spec = b.spec.get();
                    j.program = &prog;
                    j.buildset = buildset;
                    j.maxInstrs = max_instrs;
                    j.name = b.spec->props.name + "/" + kname;
                    jobs.push_back(std::move(j));
                }
            }
        }
        return jobs;
    }

    static std::vector<IsaBatch> *batches_;
};

std::vector<FleetTest::IsaBatch> *FleetTest::batches_ = nullptr;

TEST_F(FleetTest, ParallelRunBitIdenticalToSerialRun)
{
    std::vector<FleetJob> jobs = makeJobs("BlockAllNo");

    SimFleet serial(1);
    FleetReport ref = serial.run(jobs);
    ASSERT_EQ(ref.results.size(), jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
        ASSERT_TRUE(ref.results[j].error.empty()) << ref.results[j].error;
        EXPECT_EQ(static_cast<int>(ref.results[j].run.status),
                  static_cast<int>(RunStatus::Halted))
            << jobs[j].name;
        EXPECT_FALSE(ref.results[j].output.empty()) << jobs[j].name;
    }

    unsigned n = std::max(4u, parallel::hardwareThreads());
    SimFleet wide(n);
    FleetReport par = wide.run(jobs);
    ASSERT_EQ(par.results.size(), ref.results.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
        const auto &a = ref.results[j];
        const auto &b = par.results[j];
        EXPECT_EQ(static_cast<int>(a.run.status),
                  static_cast<int>(b.run.status)) << jobs[j].name;
        EXPECT_EQ(a.run.instrs, b.run.instrs) << jobs[j].name;
        EXPECT_EQ(a.stateHash, b.stateHash) << jobs[j].name;
        EXPECT_EQ(a.output, b.output) << jobs[j].name;
        EXPECT_EQ(a.counters.crossings(), b.counters.crossings())
            << jobs[j].name;
        EXPECT_EQ(a.counters.instrs, b.counters.instrs) << jobs[j].name;
    }

    // Merged stats: same values AND same dump order (job-index merge),
    // so the serialized trees are byte-identical.
    EXPECT_EQ(ref.merged->toJson().dump(2), par.merged->toJson().dump(2));
}

TEST_F(FleetTest, MergedStatsEqualSerialSumOfJobCounters)
{
    std::vector<FleetJob> jobs = makeJobs("OneAllNo");
    SimFleet fleet(3);
    FleetReport r = fleet.run(jobs);

    // Sum each job's own counters per (isa, buildset) cell...
    uint64_t want_instrs = 0, want_crossings = 0;
    for (const auto &res : r.results) {
        want_instrs += res.counters.instrs;
        want_crossings += res.counters.crossings();
    }
    // ...and compare against the merged registry across all cells.
    uint64_t got_instrs = 0, got_crossings = 0;
    for (const auto &b : *batches_) {
        const std::string base =
            parallel::fleetGroupPath(b.spec->props.name, "OneAllNo");
        auto *si = r.merged->resolve(base + ".instrs");
        auto *sc = r.merged->resolve(base + ".crossings");
        ASSERT_NE(si, nullptr) << base;
        ASSERT_NE(sc, nullptr) << base;
        got_instrs += static_cast<stats::Counter *>(si)->value();
        got_crossings += static_cast<stats::Counter *>(sc)->value();
    }
    EXPECT_EQ(got_instrs, want_instrs);
    EXPECT_EQ(got_crossings, want_crossings);
}

TEST_F(FleetTest, InterpreterJobsRunInFleetToo)
{
    std::vector<FleetJob> jobs = makeJobs("OneAllNo");
    for (auto &j : jobs)
        j.useInterp = true;
    SimFleet fleet(2);
    FleetReport r = fleet.run(jobs);
    for (size_t j = 0; j < jobs.size(); ++j) {
        ASSERT_TRUE(r.results[j].error.empty()) << r.results[j].error;
        EXPECT_EQ(static_cast<int>(r.results[j].run.status),
                  static_cast<int>(RunStatus::Halted)) << jobs[j].name;
    }
}

/** TSan stress: many short jobs hammering submission, stealing, result
 *  slots, and the per-job registries from every worker at once. */
TEST_F(FleetTest, StressManyShortJobs)
{
    std::vector<FleetJob> jobs = makeJobs("BlockMinNo", /*copies=*/6,
                                          /*max_instrs=*/2'000);
    SimFleet serial(1);
    FleetReport ref = serial.run(jobs);

    for (int round = 0; round < 3; ++round) {
        SimFleet fleet(parallel::hardwareThreads());
        FleetReport r = fleet.run(jobs);
        ASSERT_EQ(r.results.size(), jobs.size());
        for (size_t j = 0; j < jobs.size(); ++j) {
            ASSERT_TRUE(r.results[j].error.empty()) << r.results[j].error;
            EXPECT_EQ(r.results[j].stateHash, ref.results[j].stateHash)
                << jobs[j].name << " round " << round;
        }
        EXPECT_EQ(r.merged->toJson().dump(0), ref.merged->toJson().dump(0));
    }
}

} // namespace
} // namespace onespec
