/**
 * @file
 * Unit tests for the deterministic OS emulation layer.
 */

#include <gtest/gtest.h>

#include "runtime/context.hpp"
#include "support/sim_error.hpp"
#include "testutil.hpp"

namespace onespec {
namespace {

class OsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        spec_ = test::makeMiniSpec();
        ctx_ = std::make_unique<SimContext>(*spec_);
        Program p;
        p.entry = 0x1000;
        p.initialBrk = 0x30000;
        ctx_->load(p);
    }

    /** Issue a syscall through the ABI registers (mini ISA: R0, R1-R3). */
    uint64_t
    sys(uint64_t num, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0)
    {
        ArchState &st = ctx_->state();
        st.writeReg(0, 0, num);
        st.writeReg(0, 1, a0);
        st.writeReg(0, 2, a1);
        st.writeReg(0, 3, a2);
        ctx_->os().doSyscall();
        return st.readReg(0, 0);
    }

    std::unique_ptr<Spec> spec_;
    std::unique_ptr<SimContext> ctx_;
};

TEST_F(OsTest, ExitSetsCodeAndFlag)
{
    sys(kSysExit, 42);
    EXPECT_TRUE(ctx_->os().exited());
    EXPECT_EQ(ctx_->os().exitCode(), 42);
}

TEST_F(OsTest, WriteCapturesOutput)
{
    ctx_->mem().writeBlock(0x2000, "hello", 5);
    uint64_t n = sys(kSysWrite, 1, 0x2000, 5);
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(ctx_->os().output(), "hello");
    // stderr is captured too
    ctx_->mem().writeBlock(0x2000, "!", 1);
    sys(kSysWrite, 2, 0x2000, 1);
    EXPECT_EQ(ctx_->os().output(), "hello!");
}

TEST_F(OsTest, WriteToBadFdFails)
{
    uint64_t r = sys(kSysWrite, 5, 0x2000, 3);
    EXPECT_EQ(r, static_cast<uint64_t>(-1));
}

TEST_F(OsTest, ReadConsumesPresetInput)
{
    ctx_->os().setInput({'a', 'b', 'c', 'd'});
    uint64_t n = sys(kSysRead, 0, 0x2100, 3);
    EXPECT_EQ(n, 3u);
    FaultKind f = FaultKind::None;
    EXPECT_EQ(ctx_->mem().read(0x2100, 1, f), 'a');
    EXPECT_EQ(ctx_->mem().read(0x2102, 1, f), 'c');
    // Second read gets the remainder, third gets EOF (0).
    EXPECT_EQ(sys(kSysRead, 0, 0x2100, 10), 1u);
    EXPECT_EQ(sys(kSysRead, 0, 0x2100, 10), 0u);
}

TEST_F(OsTest, BrkQueryAndGrow)
{
    EXPECT_EQ(sys(kSysBrk, 0), 0x30000u);
    EXPECT_EQ(sys(kSysBrk, 0x40000), 0x40000u);
    // Shrinking below the current break is refused (break unchanged).
    EXPECT_EQ(sys(kSysBrk, 0x1000), 0x40000u);
}

TEST_F(OsTest, TimeIsDeterministicCounter)
{
    EXPECT_EQ(sys(kSysTimeMs), 0u);
    EXPECT_EQ(sys(kSysTimeMs), 1u);
    EXPECT_EQ(sys(kSysTimeMs), 2u);
}

TEST_F(OsTest, GetPidIsStable)
{
    EXPECT_EQ(sys(kSysGetPid), 1000u);
    EXPECT_EQ(sys(kSysGetPid), 1000u);
}

TEST_F(OsTest, UnknownSyscallReturnsError)
{
    EXPECT_EQ(sys(999), static_cast<uint64_t>(-1));
}

TEST_F(OsTest, UnknownSyscallUnderStrictModeIsGuestError)
{
    ctx_->os().setStrictUnknownSyscalls(true);
    EXPECT_TRUE(ctx_->os().strictUnknownSyscalls());
    try {
        sys(999);
        FAIL() << "strict mode let an unknown OS call through";
    } catch (const GuestError &e) {
        EXPECT_EQ(e.context(), "os");
        EXPECT_NE(std::string(e.what()).find("999"), std::string::npos)
            << e.what();
    }
    // Known calls are unaffected by strict mode.
    EXPECT_EQ(sys(kSysTimeMs), 0u);
    ctx_->os().setStrictUnknownSyscalls(false);
    EXPECT_EQ(sys(999), static_cast<uint64_t>(-1));
}

TEST_F(OsTest, SyscallHookCanForceFailure)
{
    struct Hook final : OsEmulator::SyscallHook
    {
        bool fail = false;
        uint64_t lastNum = 0;
        unsigned calls = 0;
        bool
        onSyscall(uint64_t num) override
        {
            ++calls;
            lastNum = num;
            return fail;
        }
    } hook;

    ctx_->os().setSyscallHook(&hook);
    hook.fail = true;
    EXPECT_EQ(sys(kSysTimeMs), static_cast<uint64_t>(-1));
    EXPECT_EQ(hook.lastNum, static_cast<uint64_t>(kSysTimeMs));
    // The forced failure pre-empted the handler: the deterministic time
    // counter did not advance.
    hook.fail = false;
    EXPECT_EQ(sys(kSysTimeMs), 0u);
    EXPECT_EQ(hook.calls, 2u);

    ctx_->os().setSyscallHook(nullptr);
    EXPECT_EQ(sys(kSysTimeMs), 1u);
}

TEST_F(OsTest, RestoreTruncatesOutputAndClearsExit)
{
    ctx_->mem().writeBlock(0x2000, "abcdef", 6);
    sys(kSysWrite, 1, 0x2000, 6);
    sys(kSysExit, 1);
    EXPECT_TRUE(ctx_->os().exited());
    ctx_->os().restore(3, 0x30000, 0);
    EXPECT_EQ(ctx_->os().output(), "abc");
    EXPECT_FALSE(ctx_->os().exited());
}

TEST_F(OsTest, SyscallCountTracks)
{
    uint64_t before = ctx_->os().syscallCount();
    sys(kSysTimeMs);
    sys(kSysTimeMs);
    EXPECT_EQ(ctx_->os().syscallCount(), before + 2);
}

} // namespace
} // namespace onespec
