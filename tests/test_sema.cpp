/**
 * @file
 * Semantic-analysis tests: resolution, typing rules, and every class of
 * description error the analyzer must reject or warn about.
 */

#include <gtest/gtest.h>

#include "adl/parser.hpp"
#include "adl/sema.hpp"
#include "testutil.hpp"

namespace onespec {
namespace {

/** Boilerplate wrapped around test snippets. */
std::string
wrap(const std::string &body)
{
    return R"(
isa t { bits 64; instr_bytes 4; endian little; }
state { regfile R[8] : u64; }
abi { syscall_num R[0]; arg R[1]; ret R[0]; stack R[7]; }
format F { op[31:26] ra[25:21] rb[20:16] imm[15:0] }
)" + body;
}

std::string
semaErr(const std::string &src)
{
    DiagnosticEngine diags;
    Description d = parseString(src, diags);
    EXPECT_FALSE(diags.hasErrors()) << "parse failed: " << diags.str();
    analyze(std::move(d), diags);
    EXPECT_TRUE(diags.hasErrors()) << "expected a sema error";
    return diags.str();
}

std::unique_ptr<Spec>
semaOk(const std::string &src, std::string *warnings = nullptr)
{
    DiagnosticEngine diags;
    Description d = parseString(src, diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    auto spec = analyze(std::move(d), diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    if (warnings)
        *warnings = diags.str();
    return spec;
}

TEST(Sema, MinimalValidDescription)
{
    auto spec = semaOk(wrap(R"(
        instr nop : F match op == 1 { }
        buildset B { semantic one; info all; }
    )"));
    EXPECT_EQ(spec->instrs.size(), 1u);
    EXPECT_EQ(spec->state.files[0].count, 8u);
    EXPECT_EQ(spec->state.totalWords, 8u);
}

TEST(Sema, MissingIsaIsError)
{
    DiagnosticEngine diags;
    Description d = parseString("field x : u64;", diags);
    analyze(std::move(d), diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Sema, NoInstructionsIsError)
{
    semaErr(wrap(""));
}

TEST(Sema, DuplicateStateNameIsError)
{
    semaErr(R"(
isa t { bits 64; }
state { regfile R[4] : u64; reg R : u32; }
abi { syscall_num R[0]; arg R[1]; ret R[0]; stack R[3]; }
format F { op[31:26] }
instr nop : F match op == 1 { }
)");
}

TEST(Sema, ReservedStateNameIsError)
{
    semaErr(R"(
isa t { bits 64; }
state { reg pc : u64; regfile R[4] : u64; }
abi { syscall_num R[0]; arg R[1]; ret R[0]; stack R[3]; }
format F { op[31:26] }
instr nop : F match op == 1 { }
)");
}

TEST(Sema, UnknownAbiRegisterIsError)
{
    semaErr(R"(
isa t { bits 64; }
state { regfile R[4] : u64; }
abi { syscall_num Q[0]; arg R[1]; ret R[0]; stack R[3]; }
format F { op[31:26] }
instr nop : F match op == 1 { }
)");
}

TEST(Sema, AbiIndexOutOfRangeIsError)
{
    semaErr(R"(
isa t { bits 64; }
state { regfile R[4] : u64; }
abi { syscall_num R[9]; arg R[1]; ret R[0]; stack R[3]; }
format F { op[31:26] }
instr nop : F match op == 1 { }
)");
}

TEST(Sema, DuplicateFieldIsError)
{
    semaErr(wrap(R"(
        field x : u64;
        field x : u32;
        instr nop : F match op == 1 { }
    )"));
}

TEST(Sema, SlotCollidesWithEncodingFieldIsError)
{
    semaErr(wrap(R"(
        field imm : u64;
        instr nop : F match op == 1 { }
    )"));
}

TEST(Sema, OperandSlotTypeMismatchIsError)
{
    semaErr(R"(
isa t { bits 64; }
state { regfile R[4] : u64; reg CR : u32; }
abi { syscall_num R[0]; arg R[1]; ret R[0]; stack R[3]; }
format F { op[31:26] ra[25:21] }
instr a : F match op == 1 { src v = R[ra]; }
instr b : F match op == 2 { src v = CR; }
)");
}

TEST(Sema, MatchFieldNotInFormatIsError)
{
    semaErr(wrap("instr i : F match nosuch == 1 { }"));
}

TEST(Sema, MatchValueTooWideIsError)
{
    semaErr(wrap("instr i : F match op == 0x40 { }")); // op is 6 bits
}

TEST(Sema, ConflictingMatchValuesIsError)
{
    semaErr(wrap("instr i : F match op == 1, op == 2 { }"));
}

TEST(Sema, NoMatchConditionIsError)
{
    semaErr(wrap("instr i : F { }"));
}

TEST(Sema, IdenticalEncodingsAreError)
{
    auto s = semaErr(wrap(R"(
        instr a : F match op == 1 { }
        instr b : F match op == 1 { }
    )"));
    EXPECT_NE(s.find("identical encodings"), std::string::npos);
}

TEST(Sema, UnknownIdentifierInActionIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            action execute { mystery = 1; }
        }
    )"));
}

TEST(Sema, OperandOfOtherInstructionIsError)
{
    semaErr(wrap(R"(
        instr a : F match op == 1 { src v = R[ra]; }
        instr b : F match op == 2 {
            action execute { branch(v); }
        }
    )"));
}

TEST(Sema, AssignToEncodingFieldIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            action execute { imm = 1; }
        }
    )"));
}

TEST(Sema, BuiltinArityIsChecked)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            action execute { branch(1, 2); }
        }
    )"));
}

TEST(Sema, UnknownFunctionIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            action execute { frobnicate(1); }
        }
    )"));
}

TEST(Sema, ActionOnImplicitStepIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            action fetch { branch(1); }
        }
    )"));
}

TEST(Sema, UnknownStepIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            action retire { branch(1); }
        }
    )"));
}

TEST(Sema, LocalRedeclarationInScopeIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            action execute { u32 x = 1; u32 x = 2; }
        }
    )"));
}

TEST(Sema, NestedScopeShadowingIsAllowed)
{
    semaOk(wrap(R"(
        field out : u64;
        instr i : F match op == 1 {
            action execute {
                u32 x = 1;
                if (x) { u32 y = 2; out = y; }
                out = out + x;
            }
        }
        buildset B { semantic one; info all; }
    )"));
}

TEST(Sema, IndexExprMayOnlyUseEncodingFields)
{
    semaErr(wrap(R"(
        field f : u64;
        instr i : F match op == 1 { src v = R[f]; }
    )"));
}

TEST(Sema, UnknownHelperIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            action execute { inline nothere; }
        }
    )"));
}

TEST(Sema, RecursiveHelperIsError)
{
    semaErr(wrap(R"(
        helper loop { inline loop; }
        instr i : F match op == 1 {
            action execute { inline loop; }
        }
    )"));
}

TEST(Sema, HelperExpandsIntoActions)
{
    auto spec = semaOk(wrap(R"(
        field out : u64;
        helper hset { out = 7; }
        instr i : F match op == 1 {
            action execute { inline hset; }
        }
        buildset B { semantic one; info all; }
    )"));
    const InstrAction &ia =
        spec->instrs[0].actions[static_cast<unsigned>(Step::Execute)];
    ASSERT_NE(ia.body, nullptr);
    // The inline statement was replaced by the helper's block.
    EXPECT_EQ(ia.body->body[0]->kind, Stmt::Kind::Block);
}

TEST(Sema, StepMissingFromCustomBuildsetIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 { }
        buildset B { entrypoint e = fetch, decode; }
    )"));
}

TEST(Sema, StepInTwoEntrypointsIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 { }
        buildset B {
            entrypoint a = fetch, decode, read_operands, execute;
            entrypoint b = execute, memory, writeback, exception;
        }
    )"));
}

TEST(Sema, OutOfOrderStepsInEntrypointIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 { }
        buildset B {
            entrypoint a = decode, fetch;
            entrypoint b = read_operands, execute, memory, writeback,
                           exception;
        }
    )"));
}

TEST(Sema, UnknownFieldInVisibilityIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 { }
        buildset B { visibility hide nosuch; }
    )"));
}

TEST(Sema, HiddenCrossEntrypointSlotWarns)
{
    // effective-address-style flow: produced at execute, consumed at
    // memory, with the two steps in different entrypoints and the field
    // hidden -> the paper's "value will be lost" situation.
    std::string warnings;
    semaOk(wrap(R"(
        field ea : u64;
        instr ld : F match op == 1 {
            src base = R[rb];
            dst v = R[ra];
            action execute { ea = base + sext16(imm); }
            action memory { v = load_u64(ea); }
        }
        buildset Lossy {
            visibility hide ea;
            entrypoint front = fetch, decode, read_operands, execute;
            entrypoint back = memory, writeback, exception;
        }
    )"),
           &warnings);
    EXPECT_NE(warnings.find("crosses entrypoints"), std::string::npos);
}

TEST(Sema, DecodeInfoLevelSelectsDecodeFields)
{
    auto spec = test::makeMiniSpec();
    const BuildsetInfo *dec = spec->findBuildset("OneDecNo");
    const BuildsetInfo *min = spec->findBuildset("OneMinNo");
    const BuildsetInfo *all = spec->findBuildset("OneAllNo");
    int ea = spec->findSlot("effective_addr");
    int alu = spec->findSlot("alu_result");
    EXPECT_TRUE(dec->visibleSlots & (SlotMask{1} << ea));
    EXPECT_FALSE(dec->visibleSlots & (SlotMask{1} << alu));
    EXPECT_EQ(min->visibleSlots, 0u);
    EXPECT_TRUE(all->visibleSlots & (SlotMask{1} << alu));
    EXPECT_FALSE(min->opRegsVisible);
    EXPECT_TRUE(dec->opRegsVisible);
}

TEST(Sema, ShiftTypingPromotesNarrowLeftOperands)
{
    // u8 << 29 must shift at (at least) 32 bits; the mini program
    // computes (flag << 29) where flag : u8 == 1.
    auto spec = semaOk(wrap(R"(
        field flag : u8;
        field out : u64;
        instr i : F match op == 1 {
            action execute { flag = 1; out = flag << 29; }
        }
        buildset B { semantic one; info all; }
    )"));
    (void)spec;
}

TEST(Sema, LiteralAdoptsOperandType)
{
    // (u32)x + 1 : the literal becomes u32, so wrap-around matches C.
    auto spec = semaOk(wrap(R"(
        field out : u32;
        instr i : F match op == 1 {
            action execute { out = 0xffffffff; out = out + 1; }
        }
        buildset B { semantic one; info all; }
    )"));
    (void)spec;
}

TEST(Sema, TooManyOperandsIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            src a1 = R[ra]; src a2 = R[ra]; src a3 = R[ra];
            src a4 = R[ra]; src a5 = R[ra]; src a6 = R[ra];
            src a7 = R[ra]; src a8 = R[ra]; src a9 = R[ra];
        }
    )"));
}

TEST(Sema, DuplicateOperandSlotInOneInstrIsError)
{
    semaErr(wrap(R"(
        instr i : F match op == 1 {
            src a = R[ra];
            src a = R[rb];
        }
    )"));
}

TEST(Sema, FingerprintIsStableAndSensitive)
{
    auto a = test::makeMiniSpec();
    auto b = test::makeMiniSpec();
    EXPECT_EQ(a->fingerprint, b->fingerprint);
    auto c = semaOk(wrap(R"(
        instr nop : F match op == 1 { }
        buildset B { semantic one; info all; }
    )"));
    EXPECT_NE(a->fingerprint, c->fingerprint);
}

} // namespace
} // namespace onespec
