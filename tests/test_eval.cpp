/**
 * @file
 * Action-language semantics: each case wraps a snippet into a one-
 * instruction ISA, runs it through the interpreter, and checks the value
 * of the `out` field.  Covers the typing rules (promotion, literal
 * adoption, C-style shift promotion), deterministic division, shifts
 * beyond width, builtins, and control flow.
 */

#include <gtest/gtest.h>

#include "adl/parser.hpp"
#include "adl/sema.hpp"
#include "iface/dyninst.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "testutil.hpp"

namespace onespec {
namespace {

struct EvalCase
{
    const char *name;
    const char *body;       ///< statements; must assign `out`
    uint64_t expected;
};

class EvalTest : public ::testing::TestWithParam<EvalCase>
{
};

uint64_t
runSnippet(const std::string &body)
{
    std::string src = R"(
isa t { bits 64; instr_bytes 4; endian little; }
state { regfile R[4] : u64; }
abi { syscall_num R[0]; arg R[1]; ret R[0]; stack R[3]; }
field out : u64;
format F { op[31:26] pad[25:0] }
instr compute : F match op == 1 {
    action execute {
)" + body + R"(
    }
}
buildset B { semantic one; info all; }
)";
    DiagnosticEngine diags;
    Description d = parseString(src, diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    auto spec = analyze(std::move(d), diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();

    SimContext ctx(*spec);
    Program p;
    p.entry = 0x1000;
    Segment s;
    s.base = 0x1000;
    uint32_t w = spec->instrs[0].fixedBits;
    for (int i = 0; i < 4; ++i)
        s.bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    p.segments.push_back(std::move(s));
    ctx.load(p);

    InterpSimulator sim(ctx, *spec->findBuildset("B"));
    DynInst di;
    EXPECT_EQ(sim.execute(di), RunStatus::Ok);
    int slot = spec->findSlot("out");
    EXPECT_TRUE(di.slotWritten(slot));
    return di.vals[slot];
}

TEST_P(EvalTest, SnippetProducesExpectedValue)
{
    EXPECT_EQ(runSnippet(GetParam().body), GetParam().expected)
        << GetParam().body;
}

const EvalCase kCases[] = {
    // --- literals and basic arithmetic
    {"add", "out = 2 + 3;", 5},
    {"hex", "out = 0xff00 | 0xff;", 0xffff},
    {"mul_wrap64", "u64 a = 0x8000000000000001; out = a * 2;", 2},
    {"sub_underflow", "out = 0 - 1;", ~uint64_t{0}},

    // --- typed locals wrap at their width
    {"u8_wrap", "u8 a = 255; a = a + 1; out = a;", 0},
    {"u16_wrap", "u16 a = 0xffff; a = a + 3; out = a;", 2},
    {"u32_wrap", "u32 a = 0xffffffff; a = a + 1; out = a;", 0},
    {"s8_signext", "s8 a = 0xff; out = (u64)a;", ~uint64_t{0}},
    {"s16_store_normalizes", "s16 a = 0x8000; out = (u64)a;",
     0xffffffffffff8000ull},

    // --- literal adoption: literal takes the other operand's type
    {"lit_adopts_u32", "u32 a = 0xffffffff; out = a + 1;", 0},
    {"lit_adopts_s32_cmp", "s32 a = 0xffffffff; out = a < 0 ? 7 : 8;", 7},

    // --- promotion: wider wins; equal width unsigned wins
    {"mixed_width", "u32 a = 0xffffffff; u64 b = 1; out = a + b;",
     0x100000000ull},
    {"signed_unsigned_same_width",
     "s32 a = 0xffffffff; u32 b = 1; out = a + b;", 0},

    // --- division semantics (deterministic, no UB)
    {"div_unsigned", "u32 a = 7; u32 b = 2; out = a / b;", 3},
    {"div_signed", "s32 a = 0xfffffff9; s32 b = 2; out = (u64)(a / b);",
     static_cast<uint64_t>(-3)},
    {"div_by_zero", "u64 a = 5; u64 b = 0; out = a / b;", 0},
    {"div_min_by_minus1",
     "s64 a = 0x8000000000000000; s64 b = 0 - 1; out = (u64)(a / b);",
     0x8000000000000000ull},
    {"rem_unsigned", "u32 a = 7; u32 b = 2; out = a % b;", 1},
    {"rem_by_zero", "u64 a = 5; u64 b = 0; out = a % b;", 0},
    {"rem_signed", "s32 a = 0xfffffff9; s32 b = 2; out = (u64)(a % b);",
     static_cast<uint64_t>(-1)},

    // --- shifts: C-style promotion, deterministic over-shift
    {"shl_basic", "out = 1 << 40;", uint64_t{1} << 40},
    {"u8_shl_promotes_to_32", "u8 a = 1; out = a << 29;",
     uint64_t{1} << 29},
    {"u32_shl_wraps", "u32 a = 1; out = a << 33;", 0},
    {"u64_overshift_is_zero", "u64 a = 1; u64 s = 64; out = a << s;", 0},
    {"shr_logical", "u32 a = 0x80000000; out = a >> 31;", 1},
    {"shr_arith", "s32 a = 0x80000000; out = (u64)(a >> 31);",
     ~uint64_t{0}},
    {"sar_overshift_fills_sign",
     "s32 a = 0x80000000; u64 s = 40; out = (u64)(a >> s);",
     ~uint64_t{0}},

    // --- comparisons at the promoted type
    {"cmp_unsigned", "u64 a = 0 - 1; out = a < 1 ? 1 : 0;", 0},
    {"cmp_signed", "s64 a = 0 - 1; out = a < 1 ? 1 : 0;", 1},
    {"cmp_eq_chain", "out = (3 == 3) + (4 != 4);", 1},

    // --- logical operators short-circuit
    {"logand_shortcircuit",
     "u64 a = 0; out = (a != 0 && (1 / a) != 0) ? 9 : 4;", 4},
    {"logor", "out = (1 || 0) + (0 || 0);", 1},
    {"lognot", "out = !5 + !0;", 1},

    // --- unary
    {"neg", "u32 a = 1; out = (u64)(0 - a);", 0xffffffffull},
    {"bitnot", "u8 a = 0x0f; out = ~a;", 0xf0},

    // --- ternary types
    {"ternary_promotes", "u8 a = 200; u32 b = 100000; out = 1 ? a : b;",
     200},

    // --- casts
    {"cast_truncates", "u64 a = 0x1234567890; out = (u16)a;", 0x7890},
    {"cast_signextends", "u64 a = 0x80; out = (u64)(s8)a;",
     ~uint64_t{0} - 0x7f},

    // --- builtins
    {"sext16", "out = sext16(0x8000) + 0x10000;", 0x8000},
    {"zext8", "out = zext8(0x1ff);", 0xff},
    {"rotl32", "out = rotl32(0x80000001, 4);", 0x18},
    {"rotr64", "out = rotr64(1, 1);", uint64_t{1} << 63},
    {"clz32", "out = clz32(0x00800000);", 8},
    {"ctz64", "out = ctz64(0x100);", 8},
    {"popcount", "out = popcount(0xf0f0);", 8},
    {"addc32_carry", "out = addc32(0xffffffff, 1, 0);", 1},
    {"addc32_nocarry", "out = addc32(0xfffffffe, 1, 0);", 0},
    {"addv32", "out = addv32(0x7fffffff, 1, 0);", 1},
    {"mulh_u64", "out = mulh_u64(0x8000000000000000, 4);", 2},
    {"mulh_s64", "out = mulh_s64(0 - 1, 4) + 1;", 0},

    // --- control flow
    {"if_else", "u64 a = 3; if (a > 2) out = 10; else out = 20;", 10},
    {"while_sum",
     "u64 i = 0; u64 s = 0; while (i < 10) { s = s + i; i = i + 1; } "
     "out = s;",
     45},
    {"nested_loops",
     "u64 i = 0; u64 s = 0; while (i < 4) { u64 j = 0; while (j < 4) "
     "{ s = s + 1; j = j + 1; } i = i + 1; } out = s;",
     16},

    // --- implicit identifiers
    {"pc_visible", "out = pc;", 0x1000},
    {"npc_default", "out = npc;", 0x1004},
    {"inst_bits", "out = inst >> 26;", 1},
};

INSTANTIATE_TEST_SUITE_P(ActionLanguage, EvalTest,
                         ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

TEST(EvalExtra, MemoryBuiltinsThroughContext)
{
    EXPECT_EQ(runSnippet("store_u32(0x2000, 0xabcd1234); "
                         "out = load_u32(0x2000);"),
              0xabcd1234u);
    EXPECT_EQ(runSnippet("store_u8(0x2000, 0x77); "
                         "store_u8(0x2001, 0x66); "
                         "out = load_u16(0x2000);"),
              0x6677u);
}

TEST(EvalExtra, BranchBuiltinSetsNpcAndFlag)
{
    std::string src = "branch(0x4000); out = npc;";
    EXPECT_EQ(runSnippet(src), 0x4000u);
}

TEST(EvalExtra, FaultAbortsRestOfAction)
{
    // After fault(3), the remaining statements must not run.
    std::string src = R"(
isa t { bits 64; instr_bytes 4; endian little; }
state { regfile R[4] : u64; }
abi { syscall_num R[0]; arg R[1]; ret R[0]; stack R[3]; }
field out : u64;
format F { op[31:26] pad[25:0] }
instr compute : F match op == 1 {
    action execute { out = 1; fault(3); out = 2; }
}
buildset B { semantic one; info all; }
)";
    DiagnosticEngine diags;
    auto spec = analyze(parseString(src, diags), diags);
    ASSERT_FALSE(diags.hasErrors()) << diags.str();
    SimContext ctx(*spec);
    Program p;
    p.entry = 0x1000;
    Segment s;
    s.base = 0x1000;
    uint32_t w = spec->instrs[0].fixedBits;
    for (int i = 0; i < 4; ++i)
        s.bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    p.segments.push_back(std::move(s));
    ctx.load(p);
    InterpSimulator sim(ctx, *spec->findBuildset("B"));
    DynInst di;
    EXPECT_EQ(sim.execute(di), RunStatus::Fault);
    EXPECT_EQ(di.fault, FaultKind::BadMemory); // code 3
    EXPECT_EQ(di.vals[spec->findSlot("out")], 1u);
    // pc did not advance past the faulting instruction.
    EXPECT_EQ(ctx.state().pc(), 0x1000u);
}

} // namespace
} // namespace onespec
