/**
 * @file
 * Observability-layer tests: registry registration and lookup, group
 * nesting, formula stats over registry-owned counters, distribution
 * quantiles, JSON round-trips (exact 64-bit integers), trace hooks, and
 * a schema regression test for the BENCH_*.json reports.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "stats/json.hpp"
#include "stats/sharded.hpp"
#include "stats/stats.hpp"
#include "stats/trace.hpp"
#include "support/panic_exception.hpp"
#include "timing/bpred.hpp"
#include "timing/cache.hpp"
#include "timing/stats.hpp"

namespace onespec {
namespace {

using stats::Json;
using stats::StatGroup;
using stats::StatKind;
using stats::StatsRegistry;

// ---------------------------------------------------------------------
// Registry basics
// ---------------------------------------------------------------------

TEST(Stats, CounterRegistrationAndLookup)
{
    StatsRegistry reg;
    stats::Counter &c = reg.root().counter("events", "total events");
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);

    stats::Stat *found = reg.resolve("events");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->kind(), StatKind::Counter);
    EXPECT_EQ(static_cast<stats::Counter *>(found)->value(), 42u);
    EXPECT_EQ(found->description(), "total events");

    // Re-requesting the same name returns the same node (accumulation).
    stats::Counter &again = reg.root().counter("events", "ignored");
    EXPECT_EQ(&again, &c);

    EXPECT_EQ(reg.resolve("nosuch"), nullptr);
    EXPECT_EQ(reg.resolve("nosuch.group.stat"), nullptr);
}

TEST(Stats, KindMismatchPanics)
{
    ScopedThrowOnPanic guard;
    StatsRegistry reg;
    reg.root().counter("x", "a counter");
    EXPECT_THROW(reg.root().scalar("x", "now a scalar"), PanicException);
}

TEST(Stats, InvalidNamePanics)
{
    ScopedThrowOnPanic guard;
    StatsRegistry reg;
    EXPECT_THROW(reg.root().counter("has space", ""), PanicException);
    EXPECT_THROW(reg.root().counter("", ""), PanicException);
}

TEST(Stats, GroupNestingAndDottedPaths)
{
    StatsRegistry reg;
    StatGroup &g = reg.group("iface.alpha64.BlockMinNo");
    g.counter("execute_block_calls", "block entrypoint calls").add(7);

    // The same dotted path resolves to the same group.
    EXPECT_EQ(&reg.group("iface.alpha64.BlockMinNo"), &g);

    stats::Stat *s =
        reg.resolve("iface.alpha64.BlockMinNo.execute_block_calls");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(static_cast<stats::Counter *>(s)->value(), 7u);

    // Structure is navigable group by group too.
    StatGroup *iface = reg.root().findGroup("iface");
    ASSERT_NE(iface, nullptr);
    ASSERT_NE(iface->findGroup("alpha64"), nullptr);
    EXPECT_EQ(iface->findGroup("BlockMinNo"), nullptr);
}

TEST(Stats, ResetZeroesRecursively)
{
    StatsRegistry reg;
    reg.group("a.b").counter("n", "").add(5);
    reg.root().scalar("v", "").set(2.5);
    reg.reset();
    EXPECT_EQ(static_cast<stats::Counter *>(reg.resolve("a.b.n"))->value(),
              0u);
    EXPECT_EQ(static_cast<stats::Scalar *>(reg.resolve("v"))->value(), 0.0);
}

TEST(Stats, FormulaOverRegistryCounters)
{
    StatsRegistry reg;
    StatGroup &g = reg.root();
    stats::Counter &instrs = g.counter("instrs", "");
    stats::Counter &crossings = g.counter("crossings", "");
    stats::Formula &f =
        g.formula("instrs_per_crossing", "amortization", [&] {
            return crossings.value()
                       ? static_cast<double>(instrs.value()) /
                             static_cast<double>(crossings.value())
                       : 0.0;
        });
    EXPECT_EQ(f.value(), 0.0);
    instrs.add(100);
    crossings.add(4);
    EXPECT_DOUBLE_EQ(f.value(), 25.0);
    // Formulas track the live counters at read time.
    crossings.add(46);
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(Stats, DistributionMomentsAndQuantiles)
{
    stats::Distribution d("lat", "latency", 0.0, 100.0, 10);
    for (int i = 1; i <= 100; ++i)
        d.sample(i - 0.5);
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.mean(), 50.0);
    EXPECT_DOUBLE_EQ(d.minSeen(), 0.5);
    EXPECT_DOUBLE_EQ(d.maxSeen(), 99.5);
    // Uniform samples: quantiles fall near p * range.
    EXPECT_NEAR(d.quantile(0.5), 50.0, 10.0);
    EXPECT_NEAR(d.quantile(0.9), 90.0, 10.0);
    EXPECT_LE(d.quantile(0.1), d.quantile(0.9));

    d.sample(-5.0);
    d.sample(500.0, 2);
    Json j = d.toJson();
    EXPECT_EQ(j.find("underflow")->asUint(), 1u);
    EXPECT_EQ(j.find("overflow")->asUint(), 2u);
    EXPECT_EQ(j.find("count")->asUint(), 103u);

    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Stats, TextDumpContainsPathsValuesAndDescriptions)
{
    StatsRegistry reg;
    reg.group("sim.decode").counter("hits", "decode cache hits").add(9);
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("sim.decode.hits"), std::string::npos);
    EXPECT_NE(out.find("9"), std::string::npos);
    EXPECT_NE(out.find("decode cache hits"), std::string::npos);
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

TEST(StatsJson, RoundTripPreservesExactIntegers)
{
    Json obj = Json::object();
    obj.set("u", Json(static_cast<uint64_t>(18446744073709551615ull)));
    obj.set("i", Json(static_cast<int64_t>(-9223372036854775807ll)));
    obj.set("d", Json(0.25));
    obj.set("s", Json(std::string("a \"quoted\"\nline\t\\")));
    obj.set("b", Json(true));
    obj.set("n", Json(nullptr));
    Json arr = Json::array();
    arr.push(Json(1));
    arr.push(Json(std::string("two")));
    obj.set("a", std::move(arr));

    Json back;
    std::string err;
    ASSERT_TRUE(Json::parse(obj.dump(2), back, &err)) << err;
    EXPECT_EQ(back.find("u")->asUint(), 18446744073709551615ull);
    EXPECT_EQ(back.find("i")->asInt(), -9223372036854775807ll);
    EXPECT_DOUBLE_EQ(back.find("d")->asDouble(), 0.25);
    EXPECT_EQ(back.find("s")->asString(), "a \"quoted\"\nline\t\\");
    EXPECT_TRUE(back.find("b")->asBool());
    EXPECT_TRUE(back.find("n")->isNull());
    ASSERT_EQ(back.find("a")->size(), 2u);
    EXPECT_EQ(back.find("a")->at(0).asInt(), 1);
    EXPECT_EQ(back.find("a")->at(1).asString(), "two");
}

TEST(StatsJson, ObjectsKeepInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zebra", Json(1));
    obj.set("apple", Json(2));
    EXPECT_EQ(obj.members()[0].first, "zebra");
    EXPECT_EQ(obj.members()[1].first, "apple");
    // set() on an existing key replaces in place.
    obj.set("zebra", Json(3));
    EXPECT_EQ(obj.members().size(), 2u);
    EXPECT_EQ(obj.find("zebra")->asInt(), 3);
}

TEST(StatsJson, ParseRejectsMalformedInput)
{
    Json out;
    EXPECT_FALSE(Json::parse("{", out));
    EXPECT_FALSE(Json::parse("[1, 2,]", out));
    EXPECT_FALSE(Json::parse("\"unterminated", out));
    EXPECT_FALSE(Json::parse("{} trailing", out));
    std::string err;
    EXPECT_FALSE(Json::parse("{\"a\": nul}", out, &err));
    EXPECT_FALSE(err.empty());
}

TEST(StatsJson, RegistryToJsonNestsGroups)
{
    StatsRegistry reg;
    reg.group("iface.alpha64").counter("crossings", "").add(3);
    Json j = reg.toJson();
    const Json *iface = j.find("iface");
    ASSERT_NE(iface, nullptr);
    const Json *isa = iface->find("alpha64");
    ASSERT_NE(isa, nullptr);
    EXPECT_EQ(isa->find("crossings")->asUint(), 3u);
}

// ---------------------------------------------------------------------
// Trace hooks
// ---------------------------------------------------------------------

TEST(StatsTrace, HooksReceiveEventsAndFilterByCategory)
{
    auto &bus = stats::TraceBus::instance();
    ASSERT_FALSE(bus.active());

    std::vector<std::string> seen;
    int all = bus.addHook(
        [&](const stats::TraceEvent &e) { seen.push_back(e.name); });
    int spec_only = bus.addHook(
        [&](const stats::TraceEvent &e) {
            seen.push_back(std::string("spec:") + e.name);
        },
        "spec");
    EXPECT_TRUE(bus.active());

    ONESPEC_TRACE("spec", "undo", 4, 2);
    ONESPEC_TRACE("cache", "miss", 1, 0);

    bus.removeHook(all);
    bus.removeHook(spec_only);
    EXPECT_FALSE(bus.active());
    ONESPEC_TRACE("spec", "undo", 1, 1); // no hooks: must be a no-op

    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], "undo");
    EXPECT_EQ(seen[1], "spec:undo");
    EXPECT_EQ(seen[2], "miss");
}

TEST(StatsTrace, HookMayRemoveItselfDuringDelivery)
{
    // A hook that deregisters itself (or a sibling) from inside its own
    // delivery must not invalidate the iteration: emit() walks a
    // copy-on-write snapshot, so removal takes effect from the *next*
    // emit, never mid-walk.
    auto &bus = stats::TraceBus::instance();
    ASSERT_FALSE(bus.active());

    int fired_self = 0, fired_other = 0;
    int self_id = 0, other_id = 0;
    self_id = bus.addHook([&](const stats::TraceEvent &) {
        ++fired_self;
        bus.removeHook(self_id); // remove *while being delivered to*
    });
    other_id = bus.addHook([&](const stats::TraceEvent &) {
        ++fired_other;
    });

    ONESPEC_TRACE("selfrm", "first", 1, 0);
    // The self-removing hook saw the event once; its sibling on the
    // same snapshot was still delivered to.
    EXPECT_EQ(fired_self, 1);
    EXPECT_EQ(fired_other, 1);
    EXPECT_TRUE(bus.active());

    ONESPEC_TRACE("selfrm", "second", 2, 0);
    EXPECT_EQ(fired_self, 1) << "removed hook fired on a later emit";
    EXPECT_EQ(fired_other, 2);

    bus.removeHook(other_id);
    EXPECT_FALSE(bus.active());
}

TEST(StatsTrace, HookMayAddHooksDuringDelivery)
{
    auto &bus = stats::TraceBus::instance();
    ASSERT_FALSE(bus.active());

    int late_fired = 0;
    std::vector<int> added;
    int adder = bus.addHook([&](const stats::TraceEvent &) {
        added.push_back(bus.addHook(
            [&](const stats::TraceEvent &) { ++late_fired; }));
    });

    ONESPEC_TRACE("addrm", "first", 1, 0);
    EXPECT_EQ(late_fired, 0) << "hook added mid-delivery saw that event";
    ONESPEC_TRACE("addrm", "second", 2, 0);
    EXPECT_EQ(late_fired, 1);

    bus.removeHook(adder);
    for (int id : added)
        bus.removeHook(id);
    EXPECT_FALSE(bus.active());
}

// ---------------------------------------------------------------------
// Concurrency: sharded publication and the trace bus under contention.
// These carry the `tsan` ctest label; rerun them under
// -DONESPEC_SANITIZE=thread to let ThreadSanitizer check the claims.
// ---------------------------------------------------------------------

TEST(StatsSharded, MergePreservesCountersScalarsDistributions)
{
    StatsRegistry a, b;
    a.group("sim").counter("instrs", "retired").add(100);
    a.group("sim").scalar("mips", "").set(1.0);
    b.group("sim").counter("instrs", "").add(25);
    b.group("sim").scalar("mips", "").set(2.5);
    stats::Distribution &da =
        a.group("sim").distribution("lat", "", 0.0, 10.0, 5);
    stats::Distribution &db =
        b.group("sim").distribution("lat", "", 0.0, 10.0, 5);
    da.sample(1.0);
    db.sample(9.0, 3);
    b.group("sim").formula("ignored", "", [] { return 42.0; });

    stats::mergeInto(a, b);
    EXPECT_EQ(static_cast<stats::Counter *>(a.resolve("sim.instrs"))
                  ->value(),
              125u);
    // Scalar: source overwrites.
    EXPECT_DOUBLE_EQ(
        static_cast<stats::Scalar *>(a.resolve("sim.mips"))->value(), 2.5);
    EXPECT_EQ(da.count(), 4u);
    EXPECT_DOUBLE_EQ(da.maxSeen(), 9.0);
    // Formulas are not transplanted (they would dangle).
    EXPECT_EQ(a.resolve("sim.ignored"), nullptr);
}

TEST(StatsSharded, ConcurrentPublishersAggregateToSerialSum)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kIncrements = 10'000;

    stats::ShardedStats sharded;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&sharded, t] {
            // Hot loop: lock-free after the first local() call.
            StatsRegistry &reg = sharded.local();
            stats::Counter &c =
                reg.group("work").counter("items", "items processed");
            stats::Distribution &d =
                reg.group("work").distribution("size", "", 0.0, 64.0, 8);
            for (unsigned i = 0; i < kIncrements; ++i) {
                ++c;
                d.sample(static_cast<double>((t + i) % 64));
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_LE(sharded.shardCount(), kThreads);
    StatsRegistry total;
    sharded.aggregate(total);
    auto *items = static_cast<stats::Counter *>(total.resolve("work.items"));
    ASSERT_NE(items, nullptr);
    EXPECT_EQ(items->value(), uint64_t{kThreads} * kIncrements);
    auto *size = total.resolve("work.size");
    ASSERT_NE(size, nullptr);
    EXPECT_EQ(static_cast<stats::Distribution *>(size)->count(),
              uint64_t{kThreads} * kIncrements);

    // clear() invalidates the TLS cache: this thread gets a fresh shard.
    sharded.clear();
    EXPECT_EQ(sharded.shardCount(), 0u);
    StatsRegistry &fresh = sharded.local();
    EXPECT_EQ(fresh.resolve("work.items"), nullptr);
    EXPECT_EQ(sharded.shardCount(), 1u);
}

TEST(StatsSharded, DistinctInstancesGetDistinctShards)
{
    // The TLS fast path is keyed by instance id: two live instances on
    // one thread must not alias each other's shards.
    stats::ShardedStats a, b;
    a.local().root().counter("n", "").add(1);
    b.local().root().counter("n", "").add(2);
    StatsRegistry ra, rb;
    a.aggregate(ra);
    b.aggregate(rb);
    EXPECT_EQ(static_cast<stats::Counter *>(ra.resolve("n"))->value(), 1u);
    EXPECT_EQ(static_cast<stats::Counter *>(rb.resolve("n"))->value(), 2u);
}

TEST(StatsTrace, HookRegistrationRacingEmissionDoesNotTear)
{
    auto &bus = stats::TraceBus::instance();
    ASSERT_FALSE(bus.active());

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> emitted{0};
    std::thread producer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            ONESPEC_TRACE("fuzzcat", "tick", emitted.load(), 0);
            emitted.fetch_add(1, std::memory_order_relaxed);
        }
    });

    // Churn hooks while the producer fires: every delivered event must
    // arrive through a fully-formed hook (the counter is the canary; the
    // real assertion is TSan/no-crash).
    std::atomic<uint64_t> delivered{0};
    for (int round = 0; round < 200; ++round) {
        int id = bus.addHook(
            [&](const stats::TraceEvent &e) {
                EXPECT_STREQ(e.category, "fuzzcat");
                delivered.fetch_add(1, std::memory_order_relaxed);
            },
            "fuzzcat");
        std::this_thread::yield();
        bus.removeHook(id);
    }
    stop.store(true);
    producer.join();
    EXPECT_FALSE(bus.active());
    EXPECT_GT(emitted.load(), 0u);
}

// ---------------------------------------------------------------------
// Timing-side publishers
// ---------------------------------------------------------------------

TEST(StatsTiming, CachePublishesDeltasAndMissRate)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.lineBytes = 64;
    cfg.ways = 2;
    Cache cache(cfg);
    for (uint64_t a = 0; a < 64 * 64; a += 64)
        cache.access(a); // 64 cold misses
    for (uint64_t a = 0; a < 4 * 64; a += 64)
        cache.access(a); // some hits/misses depending on capacity

    StatsRegistry reg;
    StatGroup &g = reg.group("l1d");
    cache.publishStats(g);
    auto *acc = static_cast<stats::Counter *>(reg.resolve("l1d.accesses"));
    auto *mis = static_cast<stats::Counter *>(reg.resolve("l1d.misses"));
    ASSERT_NE(acc, nullptr);
    ASSERT_NE(mis, nullptr);
    EXPECT_EQ(acc->value(), cache.accesses());
    EXPECT_EQ(mis->value(), cache.misses());

    // Delta publishing: a second publish with no new accesses adds 0.
    uint64_t before = acc->value();
    cache.publishStats(g);
    EXPECT_EQ(acc->value(), before);
    // ...and new accesses add only the delta.
    cache.access(0);
    cache.publishStats(g);
    EXPECT_EQ(acc->value(), before + 1);

    auto *rate = static_cast<stats::Formula *>(reg.resolve("l1d.miss_rate"));
    ASSERT_NE(rate, nullptr);
    EXPECT_GT(rate->value(), 0.0);
    EXPECT_LE(rate->value(), 1.0);
}

TEST(StatsTiming, BranchPredictorPublishesAccuracy)
{
    BranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.update(0x1000, true, 0x2000); // trains to always-taken
    StatsRegistry reg;
    bp.publishStats(reg.group("bpred"));
    auto *br =
        static_cast<stats::Counter *>(reg.resolve("bpred.branches"));
    ASSERT_NE(br, nullptr);
    EXPECT_EQ(br->value(), 100u);
    auto *acc =
        static_cast<stats::Formula *>(reg.resolve("bpred.accuracy"));
    ASSERT_NE(acc, nullptr);
    EXPECT_GT(acc->value(), 0.5); // converges fast on a monotone branch
    EXPECT_DOUBLE_EQ(acc->value(), bp.accuracy());
}

TEST(StatsTiming, TimingStatsPublishesCountersAndIpc)
{
    TimingStats ts;
    ts.cycles = 200;
    ts.instrs = 100;
    ts.branches = 10;
    ts.mispredicts = 2;
    StatsRegistry reg;
    ts.publishStats(reg.group("timing"));
    EXPECT_EQ(static_cast<stats::Counter *>(reg.resolve("timing.cycles"))
                  ->value(),
              200u);
    auto *ipc = static_cast<stats::Formula *>(reg.resolve("timing.ipc"));
    ASSERT_NE(ipc, nullptr);
    EXPECT_DOUBLE_EQ(ipc->value(), 0.5);
    auto *ba =
        static_cast<stats::Formula *>(reg.resolve("timing.bpred_accuracy"));
    ASSERT_NE(ba, nullptr);
    EXPECT_DOUBLE_EQ(ba->value(), 0.8);
}

// ---------------------------------------------------------------------
// Bench report schema regression
// ---------------------------------------------------------------------

TEST(BenchReport, SchemaAndRegistrySourcedCounters)
{
    // Tiny real measurement: one Block cell, enough instructions to make
    // the crossing amortization visible, small enough for a unit test.
    bench::CellResult cell =
        bench::measureCellFull("alpha64", "BlockMinNo", 5'000, 1);
    EXPECT_GT(cell.mips, 0.0);
    EXPECT_GT(cell.instrs, 0u);
    EXPECT_GT(cell.counters.executeBlockCalls, 0u);
    // Block detail amortizes: many instructions per crossing.
    EXPECT_GT(cell.counters.instrsPerCrossing(), 1.0);

    bench::BenchReport report("unittest");
    report.setParam("min_instrs", Json(static_cast<uint64_t>(5'000)));
    report.addCell("alpha64", "BlockMinNo", cell);
    Json j = report.toJson();

    // Top-level schema.
    ASSERT_TRUE(j.isObject());
    EXPECT_EQ(j.find("schema_version")->asUint(), 1u);
    EXPECT_EQ(j.find("bench")->asString(), "unittest");
    const Json *meta = j.find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_TRUE(meta->find("git_sha")->isString());
    EXPECT_TRUE(meta->find("compiler")->isString());
    EXPECT_TRUE(meta->find("build_type")->isString());

    // Cell schema.
    const Json *cells = j.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->size(), 1u);
    const Json &c0 = cells->at(0);
    EXPECT_EQ(c0.find("isa")->asString(), "alpha64");
    EXPECT_EQ(c0.find("buildset")->asString(), "BlockMinNo");
    EXPECT_EQ(c0.find("semantic")->asString(), "Block");
    EXPECT_EQ(c0.find("info")->asString(), "Min");
    EXPECT_FALSE(c0.find("speculation")->asBool());
    EXPECT_GT(c0.find("mips")->asDouble(), 0.0);

    // The iface counters in the JSON must equal what the registry holds
    // (the report reads them back; it does not keep its own books).
    const Json *iface = c0.find("iface");
    ASSERT_NE(iface, nullptr);
    auto regval = [](const std::string &path) {
        stats::Stat *s = StatsRegistry::global().resolve(path);
        return s ? static_cast<stats::Counter *>(s)->value() : ~0ull;
    };
    const std::string base =
        bench::cellGroupPath("alpha64", "BlockMinNo") + ".";
    for (const char *name :
         {"execute_block_calls", "crossings", "instrs"}) {
        ASSERT_NE(iface->find(name), nullptr) << name;
        EXPECT_EQ(iface->find(name)->asUint(), regval(base + name))
            << name;
        EXPECT_GT(iface->find(name)->asUint(), 0u) << name;
    }
    EXPECT_GT(iface->find("instrs_per_crossing")->asDouble(), 1.0);

    // Full registry dump rides along, and the report round-trips.
    ASSERT_NE(j.find("stats"), nullptr);
    Json back;
    std::string err;
    ASSERT_TRUE(Json::parse(j.dump(2), back, &err)) << err;
    EXPECT_EQ(back.find("cells")->at(0).find("iface")->find("crossings")
                  ->asUint(),
              iface->find("crossings")->asUint());
}

TEST(BenchReport, GeomeansPerBuildset)
{
    bench::BenchReport report("geo");
    bench::CellResult a;
    a.mips = 100.0;
    bench::CellResult b;
    b.mips = 400.0;
    report.addCell("alpha64", "OneMinNo", a);
    report.addCell("arm32", "OneMinNo", b);
    Json j = report.toJson();
    const Json *geo = j.find("geomean_mips");
    ASSERT_NE(geo, nullptr);
    ASSERT_NE(geo->find("OneMinNo"), nullptr);
    EXPECT_NEAR(geo->find("OneMinNo")->asDouble(), 200.0, 1e-9);
}

} // namespace
} // namespace onespec
