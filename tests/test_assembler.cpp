/**
 * @file
 * Tests for the label-aware assembler and the kernel builders.
 */

#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "support/panic_exception.hpp"
#include "testutil.hpp"
#include "workload/assembler.hpp"
#include "workload/builder.hpp"

namespace onespec {
namespace {

class AssemblerTest : public ::testing::Test
{
  protected:
    void SetUp() override { spec_ = test::makeMiniSpec(); }
    std::unique_ptr<Spec> spec_;
};

TEST_F(AssemblerTest, EmitsSequentialWords)
{
    Assembler a(*spec_, 0x1000, 0x8000);
    EXPECT_EQ(a.codeAddr(), 0x1000u);
    a.emit("li", {{"ra", 1}, {"imm", 5}});
    EXPECT_EQ(a.codeAddr(), 0x1004u);
    a.emit("hlt", {});
    Program p = a.finish("t");
    EXPECT_EQ(p.entry, 0x1000u);
    ASSERT_EQ(p.segments.size(), 1u);
    EXPECT_EQ(p.segments[0].bytes.size(), 8u);
}

TEST_F(AssemblerTest, ForwardAndBackwardBranchFixups)
{
    Assembler a(*spec_, 0x1000, 0x8000);
    int fwd = a.newLabel();
    int back = a.newLabel();
    a.bind(back);
    // beq r7(zero) -> fwd : taken, skips the hlt
    a.emitBranch("beq", {{"ra", 7}}, "imm", fwd, 4, 2);
    a.emit("hlt", {});
    a.bind(fwd);
    a.emitBranch("br", {{"ra", 0}}, "imm", back, 4, 2);
    Program p = a.finish("t");

    // Word 0: displacement to fwd (= +1 instruction).
    uint32_t w0 = p.segments[0].bytes[0] |
                  (p.segments[0].bytes[1] << 8) |
                  (p.segments[0].bytes[2] << 16) |
                  (p.segments[0].bytes[3] << 24);
    EXPECT_EQ(w0 & 0xffff, 1u);
    // Word 2: displacement back to 0x1000 = -3 instructions.
    uint32_t w2 = p.segments[0].bytes[8] |
                  (p.segments[0].bytes[9] << 8) |
                  (p.segments[0].bytes[10] << 16) |
                  (p.segments[0].bytes[11] << 24);
    EXPECT_EQ(w2 & 0xffff, 0xfffdu);
}

TEST_F(AssemblerTest, UnboundLabelPanicsAtFinish)
{
    Assembler a(*spec_, 0x1000, 0x8000);
    int l = a.newLabel();
    a.emitBranch("br", {{"ra", 0}}, "imm", l, 4, 2);
    ScopedThrowOnPanic guard;
    EXPECT_THROW(a.finish("t"), PanicException);
}

TEST_F(AssemblerTest, DoubleBindPanics)
{
    Assembler a(*spec_, 0x1000, 0x8000);
    int l = a.newLabel();
    a.bind(l);
    ScopedThrowOnPanic guard;
    EXPECT_THROW(a.bind(l), PanicException);
}

TEST_F(AssemblerTest, DisplacementOutOfRangePanics)
{
    Assembler a(*spec_, 0x1000, 0x8000);
    int l = a.newLabel();
    a.emitBranch("beq", {{"ra", 1}}, "imm", l, 4, 2);
    // Put the target ~2^18 instructions away: imm is 16 bits -> overflow.
    for (int i = 0; i < (1 << 16); ++i)
        a.emit("hlt", {});
    a.bind(l);
    ScopedThrowOnPanic guard;
    EXPECT_THROW(a.finish("t"), PanicException);
}

TEST_F(AssemblerTest, DataAllocationAlignsAndInitializes)
{
    Assembler a(*spec_, 0x1000, 0x8000);
    uint64_t d1 = a.dataAlloc(3, "abc", 1);
    uint64_t d2 = a.dataAlloc(8, nullptr, 8);
    EXPECT_EQ(d1, 0x8000u);
    EXPECT_EQ(d2 % 8, 0u);
    EXPECT_GT(d2, d1);
    a.emit("hlt", {});
    Program p = a.finish("t");
    ASSERT_EQ(p.segments.size(), 2u);
    EXPECT_EQ(p.segments[1].bytes[0], 'a');
}

TEST(BuilderTest, WordSizesMatchIsas)
{
    EXPECT_EQ(makeBuilder(*loadIsa("alpha64"))->wordBytes(), 8u);
    EXPECT_EQ(makeBuilder(*loadIsa("arm32"))->wordBytes(), 4u);
    EXPECT_EQ(makeBuilder(*loadIsa("ppc32"))->wordBytes(), 4u);
}

/** Portable-builder op correctness across all three ISAs. */
class BuilderOpsTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BuilderOpsTest, FundamentalOpsBehaveIdentically)
{
    auto spec = loadIsa(GetParam());
    auto b = makeBuilder(*spec);
    // v0 = ((5 + 7) * 3 - 6) ^ 0xf  = 30 ^ 15 = 17; store/load word;
    // then compare-branch sanity: if v0 != 17 -> exit(1) else exit(0).
    uint64_t buf = b->dataAlloc(16);
    b->li(0, 5);
    b->li(1, 7);
    b->add(0, 0, 1);
    b->li(1, 3);
    b->mul(0, 0, 1);
    b->addi(0, 0, -6);
    b->li(1, 0xf);
    b->xor_(0, 0, 1);
    b->li(2, buf);
    b->storew(0, 2, 8);
    b->loadw(3, 2, 8);
    b->li(4, 17);
    int bad = b->newLabel(), done = b->newLabel();
    b->bne(3, 4, bad);
    b->shli(3, 3, 2);      // 68
    b->shri(3, 3, 1);      // 34
    b->li(4, 34);
    b->bne(3, 4, bad);
    b->li(4, 0x80);
    b->storeb(4, 2, 0);
    b->loadb(5, 2, 0);
    b->li(4, 0x80);
    b->bne(5, 4, bad);
    b->emitExit(6, 0);
    b->bind(bad);
    b->emitExit(6, 1);
    b->bind(done);
    Program p = b->finish("ops");

    SimContext ctx(*spec);
    ctx.load(p);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    RunResult rr = sim->run(10000);
    EXPECT_EQ(rr.status, RunStatus::Halted);
    EXPECT_EQ(ctx.os().exitCode(), 0) << GetParam();
}

TEST_P(BuilderOpsTest, SignedAndUnsignedBranches)
{
    auto spec = loadIsa(GetParam());
    auto b = makeBuilder(*spec);
    int bad = b->newLabel();
    // -1 < 1 signed, but not unsigned.  Built via addi so the value is
    // sign-extended at the ISA's word size.
    b->li(0, 0);
    b->addi(0, 0, -1);
    b->li(1, 1);
    int ok1 = b->newLabel();
    b->blt(0, 1, ok1);      // signed: taken
    b->jmp(bad);
    b->bind(ok1);
    int ok2 = b->newLabel();
    b->bltu(1, 0, ok2);     // unsigned: 1 < 0xffffffff taken
    b->jmp(bad);
    b->bind(ok2);
    int ok3 = b->newLabel();
    b->bge(1, 0, ok3);      // signed: 1 >= -1 taken
    b->jmp(bad);
    b->bind(ok3);
    b->emitExit(6, 0);
    b->bind(bad);
    b->emitExit(6, 1);
    Program p = b->finish("branches");

    SimContext ctx(*spec);
    ctx.load(p);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    EXPECT_EQ(sim->run(1000).status, RunStatus::Halted);
    EXPECT_EQ(ctx.os().exitCode(), 0) << GetParam();
}

TEST_P(BuilderOpsTest, SarShiftsArithmetically)
{
    auto spec = loadIsa(GetParam());
    auto b = makeBuilder(*spec);
    // -256 built via addi so it is sign-extended at the ISA's word size
    // (a raw 0xffffff00 literal would be zero-extended on alpha64).
    b->li(0, 0);
    b->addi(0, 0, -256);
    b->sari(0, 0, 4);     // -16
    b->li(1, 0xfffffff0);
    int bad = b->newLabel();
    // Compare low 32 bits (alpha keeps it sign-extended to 64).
    b->li(2, 0xffffffff);
    b->and_(0, 0, 2);
    b->and_(1, 1, 2);
    b->bne(0, 1, bad);
    b->emitExit(6, 0);
    b->bind(bad);
    b->emitExit(6, 1);
    Program p = b->finish("sar");
    SimContext ctx(*spec);
    ctx.load(p);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    EXPECT_EQ(sim->run(1000).status, RunStatus::Halted);
    EXPECT_EQ(ctx.os().exitCode(), 0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllIsas, BuilderOpsTest,
                         ::testing::ValuesIn(shippedIsas()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace onespec
