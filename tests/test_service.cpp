/**
 * @file
 * Service-daemon tests: wire-protocol round trips, frame IO over a real
 * socketpair, admission control and per-tenant quotas (made
 * deterministic by pausing the daemon's dispatcher), checkpoint-backed
 * preemption with bit-identical final stats against a one-shot SimFleet
 * run, quarantine postmortems streamed over the wire, warm-pool cache
 * reuse, drain-and-resize of the live worker pool, and shutdown
 * draining.  The daemon suite carries the `tsan` ctest label; re-run it
 * under -DONESPEC_SANITIZE=thread.
 */

#include <unistd.h>

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "obs/flight_recorder.hpp"
#include "parallel/fleet.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "stats/json.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

namespace onespec {
namespace {

using parallel::FleetJob;
using parallel::FleetReport;
using parallel::SimFleet;
using service::ClientEvent;
using service::Frame;
using service::FrameType;
using service::JobPhase;
using service::JobResult;
using service::JobSpec;
using service::JobStatus;
using service::Reject;
using service::RejectCode;
using service::ServiceClient;
using service::ServiceConfig;
using service::ServiceDaemon;
using service::SubmitOutcome;
using service::WireError;
using service::WireReader;
using service::WireWriter;

// ---------------------------------------------------------------------
// Wire primitives and message round trips
// ---------------------------------------------------------------------

TEST(ServiceWire, PrimitivesRoundTripAndBoundsCheck)
{
    WireWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.str("tenant/α");
    WireReader r(w.buf);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.str(), "tenant/α");
    EXPECT_TRUE(r.atEnd());
    EXPECT_NO_THROW(r.expectEnd("test"));
    // Any read past the end is a hard WireError, not a garbage value.
    EXPECT_THROW((void)r.u8(), WireError);
    WireReader r2(w.buf);
    (void)r2.u8();
    EXPECT_THROW(r2.expectEnd("test"), WireError);
}

TEST(ServiceWire, JobSpecRoundTripsEveryField)
{
    JobSpec s;
    s.name = "ppc32/matmul";
    s.isa = "ppc32";
    s.kernel = "matmul";
    s.param = 56;
    s.buildset = "OneNoNo";
    s.useInterp = true;
    s.maxInstrs = 123456789;
    s.sliceInstrs = 4096;
    s.coldStats = true;
    s.strictSyscalls = true;
    s.profileStride = 997;
    s.deadlineNs = 5'000'000'000;
    s.maxAttempts = 3;
    s.traceId = 0xfeedfacecafe1234ull;
    JobSpec d = service::decodeSubmit(service::encodeSubmit(s));
    EXPECT_EQ(d.name, s.name);
    EXPECT_EQ(d.isa, s.isa);
    EXPECT_EQ(d.kernel, s.kernel);
    EXPECT_EQ(d.param, s.param);
    EXPECT_EQ(d.buildset, s.buildset);
    EXPECT_EQ(d.useInterp, s.useInterp);
    EXPECT_EQ(d.maxInstrs, s.maxInstrs);
    EXPECT_EQ(d.sliceInstrs, s.sliceInstrs);
    EXPECT_EQ(d.coldStats, s.coldStats);
    EXPECT_EQ(d.strictSyscalls, s.strictSyscalls);
    EXPECT_EQ(d.profileStride, s.profileStride);
    EXPECT_EQ(d.deadlineNs, s.deadlineNs);
    EXPECT_EQ(d.maxAttempts, s.maxAttempts);
    EXPECT_EQ(d.traceId, s.traceId);
}

TEST(ServiceWire, JobResultRoundTripsCountersStatsAndFrTail)
{
    JobResult res;
    res.jobId = 42;
    res.name = "alpha64/fib";
    res.quarantined = true;
    res.runStatus = RunStatus::Fault;
    res.instrs = 600000;
    res.stateHash = 0x25af34137a318927ull;
    res.ns = 987654321;
    res.output = std::string("fib\0done", 8); // embedded NUL survives
    res.errorKind = ErrorKind::Spec;
    res.error = "[service] no generated simulator";
    res.attempts = 2;
    res.preemptions = 5;
    res.counters.executeCalls = 1;
    res.counters.executeBlockCalls = 2;
    res.counters.instrs = 600000;
    res.counters.undoneInstrs = 3;
    res.statsDump = "fleet.alpha64.BlockMinNo:\n  instrs 600000\n";
    obs::FrEvent ev{};
    ev.tsNs = 123;
    ev.id = 7;
    ev.a0 = 8;
    ev.a1 = 9;
    ev.type = obs::EvType::Quarantine;
    ev.phase = obs::EvPhase::Instant;
    res.frTail.push_back(ev);

    JobResult d = service::decodeResult(service::encodeResult(res));
    EXPECT_EQ(d.jobId, res.jobId);
    EXPECT_EQ(d.name, res.name);
    EXPECT_EQ(d.quarantined, res.quarantined);
    EXPECT_EQ(static_cast<int>(d.runStatus),
              static_cast<int>(res.runStatus));
    EXPECT_EQ(d.instrs, res.instrs);
    EXPECT_EQ(d.stateHash, res.stateHash);
    EXPECT_EQ(d.ns, res.ns);
    EXPECT_EQ(d.output, res.output);
    EXPECT_EQ(static_cast<int>(d.errorKind),
              static_cast<int>(res.errorKind));
    EXPECT_EQ(d.error, res.error);
    EXPECT_EQ(d.attempts, res.attempts);
    EXPECT_EQ(d.preemptions, res.preemptions);
    EXPECT_EQ(d.counters.executeCalls, res.counters.executeCalls);
    EXPECT_EQ(d.counters.executeBlockCalls,
              res.counters.executeBlockCalls);
    EXPECT_EQ(d.counters.instrs, res.counters.instrs);
    EXPECT_EQ(d.counters.undoneInstrs, res.counters.undoneInstrs);
    EXPECT_EQ(d.statsDump, res.statsDump);
    ASSERT_EQ(d.frTail.size(), 1u);
    EXPECT_EQ(d.frTail[0].tsNs, ev.tsNs);
    EXPECT_EQ(d.frTail[0].id, ev.id);
    EXPECT_EQ(d.frTail[0].a0, ev.a0);
    EXPECT_EQ(d.frTail[0].a1, ev.a1);
    EXPECT_EQ(static_cast<int>(d.frTail[0].type),
              static_cast<int>(ev.type));
    EXPECT_EQ(static_cast<int>(d.frTail[0].phase),
              static_cast<int>(ev.phase));
}

TEST(ServiceWire, SmallMessagesRoundTrip)
{
    service::Hello h;
    h.tenant = "bench";
    h.monoNs = 111'222'333'444ull;
    service::Hello hd = service::decodeHello(service::encodeHello(h));
    EXPECT_EQ(hd.version, service::kProtocolVersion);
    EXPECT_EQ(hd.tenant, "bench");
    EXPECT_EQ(hd.monoNs, 111'222'333'444ull);

    service::HelloAck a;
    a.queueDepth = 8;
    a.tenantQuota = 4;
    a.serverName = "onespec-served";
    a.monoNs = 999'888'777'666ull;
    service::HelloAck ad =
        service::decodeHelloAck(service::encodeHelloAck(a));
    EXPECT_EQ(ad.queueDepth, 8u);
    EXPECT_EQ(ad.tenantQuota, 4u);
    EXPECT_EQ(ad.serverName, "onespec-served");
    EXPECT_EQ(ad.monoNs, 999'888'777'666ull);

    Reject rj;
    rj.code = RejectCode::TenantQuota;
    rj.reason = "tenant 'bench' has 4 jobs in flight";
    Reject rjd = service::decodeReject(service::encodeReject(rj));
    EXPECT_EQ(static_cast<int>(rjd.code), static_cast<int>(rj.code));
    EXPECT_EQ(rjd.reason, rj.reason);

    JobStatus st;
    st.jobId = 9;
    st.phase = JobPhase::Preempted;
    st.attempt = 2;
    st.instrsDone = 100000;
    JobStatus std_ = service::decodeStatus(service::encodeStatus(st));
    EXPECT_EQ(std_.jobId, 9u);
    EXPECT_EQ(static_cast<int>(std_.phase),
              static_cast<int>(JobPhase::Preempted));
    EXPECT_EQ(std_.attempt, 2u);
    EXPECT_EQ(std_.instrsDone, 100000u);

    EXPECT_EQ(service::decodeAccept(service::encodeAccept(77)), 77u);
    EXPECT_EQ(service::decodeStatsz(service::encodeStatsz("{\"a\":1}")),
              "{\"a\":1}");
    EXPECT_EQ(service::decodeMetricsz(service::encodeMetricsz(
                  "# TYPE x gauge\nx 1\n# EOF\n")),
              "# TYPE x gauge\nx 1\n# EOF\n");
}

TEST(ServiceWire, OldProtocolVersionIsRejectedWithTypedError)
{
    // A v1 peer's frame (version byte 1) against this build's v2:
    // readFrame must fail with a WireError naming both versions, not
    // misparse the payload -- that is the whole-version-bump contract
    // (docs/SERVICE.md, "Framing and versioning").
    ASSERT_GE(service::kProtocolVersion, 2u);
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const uint8_t v1_hello[8] = {0, 0, 0, 0,
                                 static_cast<uint8_t>(FrameType::Hello),
                                 1, 0, 0};
    ASSERT_EQ(::write(sv[0], v1_hello, sizeof(v1_hello)), 8);
    Frame f;
    try {
        (void)service::readFrame(sv[1], f);
        FAIL() << "readFrame accepted a version-1 frame";
    } catch (const WireError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("version"), std::string::npos) << msg;
        EXPECT_NE(msg.find('1'), std::string::npos) << msg;
        EXPECT_NE(msg.find(std::to_string(service::kProtocolVersion)),
                  std::string::npos)
            << msg;
    }
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(ServiceWire, FrameIoOverSocketpair)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    service::writeFrame(sv[0], FrameType::Accept,
                        service::encodeAccept(123));
    Frame f;
    ASSERT_TRUE(service::readFrame(sv[1], f));
    EXPECT_EQ(static_cast<int>(f.type),
              static_cast<int>(FrameType::Accept));
    EXPECT_EQ(service::decodeAccept(f.payload), 123u);

    // Clean EOF before any header byte: readFrame says "no more", it
    // does not throw.
    ::close(sv[0]);
    EXPECT_FALSE(service::readFrame(sv[1], f));
    ::close(sv[1]);

    // EOF in the *middle* of a frame is peer damage, not a clean end.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const uint8_t half_header[3] = {9, 9, 9};
    ASSERT_EQ(::write(sv[0], half_header, sizeof(half_header)), 3);
    ::close(sv[0]);
    EXPECT_THROW((void)service::readFrame(sv[1], f), WireError);
    ::close(sv[1]);

    // A declared payload length beyond the sanity bound is rejected
    // before any allocation attempt.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    uint8_t hdr[8] = {0xff, 0xff, 0xff, 0xff, 1, 1, 0, 0};
    ASSERT_EQ(::write(sv[0], hdr, sizeof(hdr)), 8);
    EXPECT_THROW((void)service::readFrame(sv[1], f), WireError);
    ::close(sv[0]);
    ::close(sv[1]);
}

// ---------------------------------------------------------------------
// Daemon behavior (in-process, real socket, real jobs)
// ---------------------------------------------------------------------

/** Fresh socket path + store dir per test, under the system temp root
 *  (AF_UNIX paths are length-limited, so keep them short). */
class ServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = std::filesystem::temp_directory_path() /
                ("onespec_svc_" +
                 std::to_string(static_cast<unsigned long>(::getpid())) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        std::filesystem::remove_all(base_);
        std::filesystem::create_directories(base_);
        cfg_.socketPath = (base_ / "s.sock").string();
        cfg_.storeDir = (base_ / "store").string();
        cfg_.workers = 2;
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(base_);
    }

    static JobSpec
    fibSpec(uint64_t maxInstrs = 60'000, uint64_t slice = 0)
    {
        JobSpec s;
        s.name = "alpha64/fib";
        s.isa = "alpha64";
        s.kernel = "fib";
        s.param = 250'000;
        s.maxInstrs = maxInstrs;
        s.sliceInstrs = slice;
        return s;
    }

    /** Drain events until @p want Results arrived (statuses pass by). */
    static std::vector<JobResult>
    collectResults(ServiceClient &c, size_t want)
    {
        std::vector<JobResult> out;
        ClientEvent ev;
        while (out.size() < want && c.next(ev)) {
            if (ev.kind == ClientEvent::Kind::Result)
                out.push_back(ev.result);
        }
        return out;
    }

    std::filesystem::path base_;
    ServiceConfig cfg_;
};

TEST_F(ServiceTest, HandshakeReportsLimitsAndRunsAJob)
{
    cfg_.queueDepth = 5;
    cfg_.tenantQuota = 3;
    ServiceDaemon daemon(cfg_);
    daemon.start();

    ServiceClient c;
    c.connect(cfg_.socketPath, "t0");
    EXPECT_EQ(c.serverInfo().serverName, "onespec-served");
    EXPECT_EQ(c.serverInfo().queueDepth, 5u);
    EXPECT_EQ(c.serverInfo().tenantQuota, 3u);

    SubmitOutcome o = c.submit(fibSpec());
    ASSERT_TRUE(o.accepted) << o.reject.reason;
    auto results = collectResults(c, 1);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].quarantined) << results[0].error;
    EXPECT_EQ(results[0].instrs, 60'000u);
    EXPECT_EQ(static_cast<int>(results[0].runStatus),
              static_cast<int>(RunStatus::Ok));
    EXPECT_NE(results[0].stateHash, 0u);
    EXPECT_FALSE(results[0].statsDump.empty());
    daemon.stop();
}

TEST_F(ServiceTest, AdmissionRejectsDeterministically)
{
    cfg_.queueDepth = 3;
    cfg_.tenantQuota = 2;
    ServiceDaemon daemon(cfg_);
    daemon.start();
    // Parked dispatcher: every accepted job stays queued, so the
    // rejection sequence below is a pure function of the submissions.
    daemon.setDispatchPaused(true);

    ServiceClient a, b;
    a.connect(cfg_.socketPath, "tenant-a");
    b.connect(cfg_.socketPath, "tenant-b");

    // Unknown ISA and unknown kernel are BadRequest before any
    // queue/quota accounting.
    JobSpec bad = fibSpec();
    bad.isa = "vax11";
    SubmitOutcome o = a.submit(bad);
    ASSERT_FALSE(o.accepted);
    EXPECT_EQ(static_cast<int>(o.reject.code),
              static_cast<int>(RejectCode::BadRequest));
    bad = fibSpec();
    bad.kernel = "mandelbrot";
    o = a.submit(bad);
    ASSERT_FALSE(o.accepted);
    EXPECT_EQ(static_cast<int>(o.reject.code),
              static_cast<int>(RejectCode::BadRequest));

    // Tenant A fills its quota of 2; its third submit bounces even
    // though the queue (depth 3) still has room.
    ASSERT_TRUE(a.submit(fibSpec()).accepted);
    ASSERT_TRUE(a.submit(fibSpec()).accepted);
    o = a.submit(fibSpec());
    ASSERT_FALSE(o.accepted);
    EXPECT_EQ(static_cast<int>(o.reject.code),
              static_cast<int>(RejectCode::TenantQuota));

    // Tenant B takes the last queue slot; its next submit hits the
    // global bound, not its (unfilled) quota.
    ASSERT_TRUE(b.submit(fibSpec()).accepted);
    o = b.submit(fibSpec());
    ASSERT_FALSE(o.accepted);
    EXPECT_EQ(static_cast<int>(o.reject.code),
              static_cast<int>(RejectCode::QueueFull));

    // Unpark: every admitted job still runs to completion.
    daemon.setDispatchPaused(false);
    EXPECT_EQ(collectResults(a, 2).size(), 2u);
    EXPECT_EQ(collectResults(b, 1).size(), 1u);
    daemon.stop();
}

TEST_F(ServiceTest, PreemptedJobMatchesOneShotFleetRunBitForBit)
{
    ServiceDaemon daemon(cfg_);
    daemon.start();

    // Sliced + coldStats: 6 preemption cycles through the checkpoint
    // store, every slice on whichever worker the dispatcher picked.
    JobSpec spec = fibSpec(60'000, 9'000);
    spec.coldStats = true;
    spec.profileStride = 1'000;
    ServiceClient c;
    c.connect(cfg_.socketPath, "ident");
    ASSERT_TRUE(c.submit(spec).accepted);
    unsigned preempted_seen = 0, resumed_seen = 0;
    JobResult got;
    bool have = false;
    ClientEvent ev;
    while (!have && c.next(ev)) {
        if (ev.kind == ClientEvent::Kind::Status) {
            if (ev.status.phase == JobPhase::Preempted)
                ++preempted_seen;
            if (ev.status.phase == JobPhase::Resumed)
                ++resumed_seen;
        } else if (ev.kind == ClientEvent::Kind::Result) {
            got = ev.result;
            have = true;
        }
    }
    ASSERT_TRUE(have);
    EXPECT_EQ(got.preemptions, 6u);
    EXPECT_EQ(preempted_seen, 6u);
    EXPECT_EQ(resumed_seen, 6u);
    EXPECT_FALSE(got.quarantined) << got.error;
    daemon.stop();

    // Reference: the same job on a SimFleet, replaying the documented
    // slice semantics (run at most `slice` instructions, then flush
    // cached decodes as a restore does) without any service, socket, or
    // checkpoint store in the loop.  The service's claim is exactly that
    // checkpoint-backed preemption adds nothing beyond those semantics
    // (docs/SERVICE.md, "Preemption"); ckpt tests separately prove that
    // a restore is bit-identical to never stopping.
    auto isaSpec = loadIsa(spec.isa);
    auto builder = makeBuilder(*isaSpec);
    Program prog = buildKernel(*builder, spec.kernel, spec.param);
    FleetJob fj;
    fj.spec = isaSpec.get();
    fj.program = &prog;
    fj.buildset = spec.buildset;
    fj.maxInstrs = spec.maxInstrs;
    fj.name = spec.name;
    fj.profileStride = spec.profileStride;
    const uint64_t slice = spec.sliceInstrs;
    const uint64_t maxInstrs = spec.maxInstrs;
    fj.body = [slice, maxInstrs](SimContext &, FunctionalSimulator &sim,
                                 parallel::FleetResult &out,
                                 stats::StatsRegistry &) {
        uint64_t done = 0;
        while (true) {
            RunResult r = sim.run(std::min(slice, maxInstrs - done));
            done += r.instrs;
            out.run.status = r.status;
            if (r.status != RunStatus::Ok || done >= maxInstrs ||
                r.instrs == 0)
                break;
            sim.onStateRestored(); // what a resume-from-checkpoint does
        }
        out.run.instrs = done;
    };
    SimFleet fleet(1);
    FleetReport rep = fleet.run({fj});
    ASSERT_EQ(rep.results.size(), 1u);
    const parallel::FleetResult &ref = rep.results[0];

    EXPECT_EQ(static_cast<int>(got.runStatus),
              static_cast<int>(ref.run.status));
    EXPECT_EQ(got.instrs, ref.run.instrs);
    EXPECT_EQ(got.stateHash, ref.stateHash);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.counters.executeCalls, ref.counters.executeCalls);
    EXPECT_EQ(got.counters.executeBlockCalls,
              ref.counters.executeBlockCalls);
    EXPECT_EQ(got.counters.stepCalls, ref.counters.stepCalls);
    EXPECT_EQ(got.counters.customCalls, ref.counters.customCalls);
    EXPECT_EQ(got.counters.fastForwardCalls,
              ref.counters.fastForwardCalls);
    EXPECT_EQ(got.counters.undoCalls, ref.counters.undoCalls);
    EXPECT_EQ(got.counters.instrs, ref.counters.instrs);
    EXPECT_EQ(got.counters.undoneInstrs, ref.counters.undoneInstrs);
    std::ostringstream refDump;
    ASSERT_NE(rep.jobStats[0], nullptr);
    rep.jobStats[0]->dump(refDump);
    EXPECT_EQ(got.statsDump, refDump.str())
        << "per-slice published stats diverged from the one-shot run";
}

TEST_F(ServiceTest, PoisonedJobQuarantinesWithPostmortemTail)
{
    obs::FlightControl::instance().arm(obs::FlightControl::
                                           kDefaultCapacity);
    ServiceDaemon daemon(cfg_);
    daemon.start();

    // A buildset that resolves to no generated simulator is only
    // discovered at instantiation time, on the worker -- the admission
    // layer cannot see it (that is the design: resolving it would mean
    // building the simulator at admission).
    JobSpec poison = fibSpec();
    poison.buildset = "__poisoned__";
    ServiceClient c;
    c.connect(cfg_.socketPath, "q");
    ASSERT_TRUE(c.submit(poison).accepted);
    auto results = collectResults(c, 1);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].quarantined);
    EXPECT_EQ(static_cast<int>(results[0].errorKind),
              static_cast<int>(ErrorKind::Spec));
    EXPECT_NE(results[0].error.find("__poisoned__"), std::string::npos)
        << results[0].error;
    EXPECT_EQ(results[0].attempts, 1u); // SpecError is not retryable
    EXPECT_FALSE(results[0].frTail.empty())
        << "armed recorder must ship a postmortem tail";
    daemon.stop();
}

TEST_F(ServiceTest, WarmPoolReusesDecodeCachesAcrossSameTenantJobs)
{
    cfg_.workers = 1; // one worker => same warm entry every time
    ServiceDaemon daemon(cfg_);
    daemon.start();

    ServiceClient c;
    c.connect(cfg_.socketPath, "warm");
    JobSpec spec = fibSpec(30'000);
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(c.submit(spec).accepted);
        auto results = collectResults(c, 1);
        ASSERT_EQ(results.size(), 1u);
        ASSERT_FALSE(results[0].quarantined) << results[0].error;
        EXPECT_EQ(results[0].instrs, 30'000u);
    }

    stats::Json j;
    ASSERT_TRUE(stats::Json::parse(daemon.statszJson(), j));
    const stats::Json *warm = j.find("warm");
    ASSERT_NE(warm, nullptr);
    EXPECT_GE(warm->find("cache_reuses")->asUint(), 2u)
        << daemon.statszJson();
    EXPECT_EQ(warm->find("creates")->asUint(), 1u);
    const stats::Json *jobs = j.find("jobs");
    ASSERT_NE(jobs, nullptr);
    EXPECT_EQ(jobs->find("completed")->asUint(), 3u);
    daemon.stop();
}

TEST_F(ServiceTest, ResizeWorkersDrainsAndContinues)
{
    cfg_.workers = 3;
    ServiceDaemon daemon(cfg_);
    daemon.start();

    ServiceClient c;
    c.connect(cfg_.socketPath, "resize");
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(c.submit(fibSpec(20'000)).accepted);
    daemon.resizeWorkers(1); // drains in-flight slices, rebuilds at 1
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(c.submit(fibSpec(20'000)).accepted);
    daemon.resizeWorkers(2);
    auto results = collectResults(c, 8);
    ASSERT_EQ(results.size(), 8u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.quarantined) << r.error;
        EXPECT_EQ(r.instrs, 20'000u);
    }
    stats::Json j;
    ASSERT_TRUE(stats::Json::parse(daemon.statszJson(), j));
    EXPECT_EQ(j.find("gauges")->find("workers")->asUint(), 2u);
    daemon.stop();
}

TEST_F(ServiceTest, ShutdownDrainsInFlightJobsThenAcks)
{
    ServiceDaemon daemon(cfg_);
    daemon.start();

    ServiceClient c;
    c.connect(cfg_.socketPath, "drain");
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(c.submit(fibSpec(40'000)).accepted);
    // shutdownServer() returns only after ShutdownAck, and the daemon
    // only acks once the queue is empty -- so all three Results are
    // already queued client-side when this returns.
    c.shutdownServer();
    auto results = collectResults(c, 3);
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results)
        EXPECT_FALSE(r.quarantined) << r.error;
    daemon.waitShutdown();
    daemon.stop();
    // The socket is gone: the daemon unlinked it on the way out.
    EXPECT_FALSE(std::filesystem::exists(cfg_.socketPath));
}

TEST_F(ServiceTest, SubmitsDuringDrainAreRejected)
{
    ServiceDaemon daemon(cfg_);
    daemon.start();
    daemon.setDispatchPaused(true);

    ServiceClient worker, late;
    worker.connect(cfg_.socketPath, "w");
    late.connect(cfg_.socketPath, "late");
    ASSERT_TRUE(worker.submit(fibSpec(20'000)).accepted);

    // Drain request from a second thread would be the natural shape;
    // keep it single-threaded by submitting while the daemon is
    // draining-but-not-empty: park the dispatcher, send Shutdown from a
    // throwaway client, and give the daemon a beat to flip `draining`.
    std::thread shut([&] {
        ServiceClient s;
        s.connect(cfg_.socketPath, "shut");
        s.shutdownServer();
    });
    SubmitOutcome o;
    size_t lateAccepted = 0; // raced ahead of the drain flag; runs later
    for (int tries = 0; tries < 2000; ++tries) {
        o = late.submit(fibSpec(20'000));
        if (!o.accepted && o.reject.code == RejectCode::Draining)
            break;
        if (o.accepted)
            ++lateAccepted;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_FALSE(o.accepted);
    EXPECT_EQ(static_cast<int>(o.reject.code),
              static_cast<int>(RejectCode::Draining));
    daemon.setDispatchPaused(false);
    EXPECT_EQ(collectResults(worker, 1).size(), 1u);
    EXPECT_EQ(collectResults(late, lateAccepted).size(), lateAccepted);
    shut.join();
    daemon.waitShutdown();
    daemon.stop();
}

// ---------------------------------------------------------------------
// Observability: /statsz coherence and the metrics exposition
// ---------------------------------------------------------------------

/** Sum of the four typed rejection counters in a /statsz dump. */
static uint64_t
rejectedTotal(const stats::Json &jobs)
{
    return jobs.find("rejected_queue_full")->asUint() +
           jobs.find("rejected_tenant_quota")->asUint() +
           jobs.find("rejected_draining")->asUint() +
           jobs.find("rejected_bad_request")->asUint();
}

TEST_F(ServiceTest, StatszAccountingIdentityHoldsUnderConcurrentSubmits)
{
    // Small bounds so the hammer provokes real rejections (queue-full
    // and quota) while jobs complete underneath the polling.
    cfg_.queueDepth = 4;
    cfg_.tenantQuota = 3;
    ServiceDaemon daemon(cfg_);
    daemon.start();

    constexpr int kThreads = 3;
    constexpr int kJobsPerThread = 12;
    std::atomic<int> active{kThreads};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            ServiceClient c;
            c.connect(cfg_.socketPath, "hammer-" + std::to_string(t));
            size_t accepted = 0;
            for (int j = 0; j < kJobsPerThread; ++j)
                accepted += c.submit(fibSpec(20'000)).accepted ? 1 : 0;
            collectResults(c, accepted);
            active.fetch_sub(1);
        });
    }

    // The invariant under test: every /statsz dump -- no matter when it
    // lands relative to admissions, completions, and rejections on
    // other threads -- satisfies the accounting identity.  One torn
    // counter block (e.g. submitted bumped, in_flight not yet) fails
    // here.
    uint64_t observations = 0;
    uint64_t lastSubmitted = 0;
    auto observe = [&](bool final_) {
        stats::Json j;
        ASSERT_TRUE(stats::Json::parse(daemon.statszJson(), j));
        const stats::Json *jobs = j.find("jobs");
        ASSERT_NE(jobs, nullptr);
        const uint64_t submitted = jobs->find("submitted")->asUint();
        const uint64_t completed = jobs->find("completed")->asUint();
        const uint64_t quarantined = jobs->find("quarantined")->asUint();
        const uint64_t inFlight = jobs->find("in_flight")->asUint();
        const uint64_t rejected = rejectedTotal(*jobs);
        EXPECT_EQ(completed + quarantined + rejected + inFlight,
                  submitted)
            << "observation " << observations << ": completed="
            << completed << " quarantined=" << quarantined
            << " rejected=" << rejected << " in_flight=" << inFlight
            << " submitted=" << submitted;
        EXPECT_GE(submitted, lastSubmitted) << "submitted went backwards";
        lastSubmitted = submitted;
        if (final_) {
            EXPECT_EQ(submitted,
                      static_cast<uint64_t>(kThreads * kJobsPerThread));
            EXPECT_EQ(inFlight, 0u);
            EXPECT_EQ(quarantined, 0u);
        }
        ++observations;
    };
    while (active.load() > 0)
        observe(false);
    for (auto &t : submitters)
        t.join();
    observe(true);
    EXPECT_GE(observations, 2u);
    daemon.stop();
}

TEST_F(ServiceTest, MetricsScrapesAreMonotoneSampledAndReadOnly)
{
    cfg_.metricsRingCap = 8;
    cfg_.metricsSampleEvery = 1;
    ServiceDaemon daemon(cfg_);
    daemon.start();

    ServiceClient c;
    c.connect(cfg_.socketPath, "bench");
    // The start() baseline sample makes an idle scrape carry the full
    // family set at zero.
    const std::string s0 = c.metricsz();
    EXPECT_NE(s0.find("onespec_jobs_completed_total 0\n"),
              std::string::npos)
        << s0;
    EXPECT_NE(s0.find("onespec_metrics_samples_total 1\n"),
              std::string::npos);

    ASSERT_TRUE(c.submit(fibSpec(20'000)).accepted);
    ASSERT_TRUE(c.submit(fibSpec(20'000)).accepted);
    ASSERT_EQ(collectResults(c, 2).size(), 2u);

    const std::string s1 = c.metricsz();
    EXPECT_NE(s1.find("onespec_jobs_submitted_total 2\n"),
              std::string::npos)
        << s1;
    EXPECT_NE(s1.find("onespec_jobs_completed_total 2\n"),
              std::string::npos);
    // Per-tenant and per-(isa,buildset) breakdowns.
    EXPECT_NE(s1.find("onespec_tenant_jobs_completed_total"
                      "{tenant=\"bench\"} 2\n"),
              std::string::npos);
    EXPECT_NE(s1.find("onespec_workload_jobs_completed_total"
                      "{isa=\"alpha64\",buildset=\"BlockMinNo\"} 2\n"),
              std::string::npos);
    EXPECT_NE(s1.find("onespec_workload_instrs_total"
                      "{isa=\"alpha64\",buildset=\"BlockMinNo\"} 40000\n"),
              std::string::npos);
    // OpenMetrics framing.
    ASSERT_GE(s1.size(), 6u);
    EXPECT_EQ(s1.substr(s1.size() - 6), "# EOF\n");

    // Scraping is read-only: an immediate re-scrape of a quiet daemon
    // is byte-identical, and no counter in it went backwards.
    EXPECT_EQ(c.metricsz(), s1);
    daemon.stop();
}

} // namespace
} // namespace onespec
