# Empty dependencies file for organizations_tour.
# This may be replaced when dependencies are built.
