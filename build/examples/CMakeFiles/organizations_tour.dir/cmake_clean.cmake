file(REMOVE_RECURSE
  "CMakeFiles/organizations_tour.dir/organizations_tour.cpp.o"
  "CMakeFiles/organizations_tour.dir/organizations_tour.cpp.o.d"
  "organizations_tour"
  "organizations_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/organizations_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
