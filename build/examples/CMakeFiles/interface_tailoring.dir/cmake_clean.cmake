file(REMOVE_RECURSE
  "CMakeFiles/interface_tailoring.dir/interface_tailoring.cpp.o"
  "CMakeFiles/interface_tailoring.dir/interface_tailoring.cpp.o.d"
  "interface_tailoring"
  "interface_tailoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interface_tailoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
