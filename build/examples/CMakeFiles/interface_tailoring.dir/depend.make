# Empty dependencies file for interface_tailoring.
# This may be replaced when dependencies are built.
