file(REMOVE_RECURSE
  "CMakeFiles/sampling_explorer.dir/sampling_explorer.cpp.o"
  "CMakeFiles/sampling_explorer.dir/sampling_explorer.cpp.o.d"
  "sampling_explorer"
  "sampling_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
