# Empty dependencies file for sampling_explorer.
# This may be replaced when dependencies are built.
