file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_interface.dir/bench_micro_interface.cpp.o"
  "CMakeFiles/bench_micro_interface.dir/bench_micro_interface.cpp.o.d"
  "bench_micro_interface"
  "bench_micro_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
