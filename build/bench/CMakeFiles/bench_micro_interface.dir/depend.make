# Empty dependencies file for bench_micro_interface.
# This may be replaced when dependencies are built.
