# Empty compiler generated dependencies file for bench_ablation_blockcache.
# This may be replaced when dependencies are built.
