file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blockcache.dir/bench_ablation_blockcache.cpp.o"
  "CMakeFiles/bench_ablation_blockcache.dir/bench_ablation_blockcache.cpp.o.d"
  "bench_ablation_blockcache"
  "bench_ablation_blockcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blockcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
