# Empty dependencies file for bench_table2_speed.
# This may be replaced when dependencies are built.
