file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_speed.dir/bench_table2_speed.cpp.o"
  "CMakeFiles/bench_table2_speed.dir/bench_table2_speed.cpp.o.d"
  "bench_table2_speed"
  "bench_table2_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
