file(REMOVE_RECURSE
  "CMakeFiles/bench_interp_vs_generated.dir/bench_interp_vs_generated.cpp.o"
  "CMakeFiles/bench_interp_vs_generated.dir/bench_interp_vs_generated.cpp.o.d"
  "bench_interp_vs_generated"
  "bench_interp_vs_generated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interp_vs_generated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
