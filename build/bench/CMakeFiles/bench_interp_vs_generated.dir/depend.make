# Empty dependencies file for bench_interp_vs_generated.
# This may be replaced when dependencies are built.
