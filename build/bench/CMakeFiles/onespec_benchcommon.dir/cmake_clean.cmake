file(REMOVE_RECURSE
  "CMakeFiles/onespec_benchcommon.dir/benchcommon.cpp.o"
  "CMakeFiles/onespec_benchcommon.dir/benchcommon.cpp.o.d"
  "libonespec_benchcommon.a"
  "libonespec_benchcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
