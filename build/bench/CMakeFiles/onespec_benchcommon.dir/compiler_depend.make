# Empty compiler generated dependencies file for onespec_benchcommon.
# This may be replaced when dependencies are built.
