file(REMOVE_RECURSE
  "libonespec_benchcommon.a"
)
