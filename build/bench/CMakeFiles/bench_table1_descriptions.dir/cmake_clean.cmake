file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_descriptions.dir/bench_table1_descriptions.cpp.o"
  "CMakeFiles/bench_table1_descriptions.dir/bench_table1_descriptions.cpp.o.d"
  "bench_table1_descriptions"
  "bench_table1_descriptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_descriptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
