# Empty dependencies file for bench_design_sweep.
# This may be replaced when dependencies are built.
