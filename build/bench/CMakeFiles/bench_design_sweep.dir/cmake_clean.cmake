file(REMOVE_RECURSE
  "CMakeFiles/bench_design_sweep.dir/bench_design_sweep.cpp.o"
  "CMakeFiles/bench_design_sweep.dir/bench_design_sweep.cpp.o.d"
  "bench_design_sweep"
  "bench_design_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
