# Empty dependencies file for onespec_isa.
# This may be replaced when dependencies are built.
