file(REMOVE_RECURSE
  "CMakeFiles/onespec_isa.dir/isa.cpp.o"
  "CMakeFiles/onespec_isa.dir/isa.cpp.o.d"
  "libonespec_isa.a"
  "libonespec_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
