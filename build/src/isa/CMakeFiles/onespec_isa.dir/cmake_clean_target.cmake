file(REMOVE_RECURSE
  "libonespec_isa.a"
)
