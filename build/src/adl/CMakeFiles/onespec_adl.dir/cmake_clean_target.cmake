file(REMOVE_RECURSE
  "libonespec_adl.a"
)
