file(REMOVE_RECURSE
  "CMakeFiles/onespec_adl.dir/ast.cpp.o"
  "CMakeFiles/onespec_adl.dir/ast.cpp.o.d"
  "CMakeFiles/onespec_adl.dir/builtins.cpp.o"
  "CMakeFiles/onespec_adl.dir/builtins.cpp.o.d"
  "CMakeFiles/onespec_adl.dir/encode.cpp.o"
  "CMakeFiles/onespec_adl.dir/encode.cpp.o.d"
  "CMakeFiles/onespec_adl.dir/lexer.cpp.o"
  "CMakeFiles/onespec_adl.dir/lexer.cpp.o.d"
  "CMakeFiles/onespec_adl.dir/load.cpp.o"
  "CMakeFiles/onespec_adl.dir/load.cpp.o.d"
  "CMakeFiles/onespec_adl.dir/parser.cpp.o"
  "CMakeFiles/onespec_adl.dir/parser.cpp.o.d"
  "CMakeFiles/onespec_adl.dir/sema.cpp.o"
  "CMakeFiles/onespec_adl.dir/sema.cpp.o.d"
  "CMakeFiles/onespec_adl.dir/spec.cpp.o"
  "CMakeFiles/onespec_adl.dir/spec.cpp.o.d"
  "CMakeFiles/onespec_adl.dir/types.cpp.o"
  "CMakeFiles/onespec_adl.dir/types.cpp.o.d"
  "libonespec_adl.a"
  "libonespec_adl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_adl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
