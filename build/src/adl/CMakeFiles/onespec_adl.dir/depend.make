# Empty dependencies file for onespec_adl.
# This may be replaced when dependencies are built.
