
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adl/ast.cpp" "src/adl/CMakeFiles/onespec_adl.dir/ast.cpp.o" "gcc" "src/adl/CMakeFiles/onespec_adl.dir/ast.cpp.o.d"
  "/root/repo/src/adl/builtins.cpp" "src/adl/CMakeFiles/onespec_adl.dir/builtins.cpp.o" "gcc" "src/adl/CMakeFiles/onespec_adl.dir/builtins.cpp.o.d"
  "/root/repo/src/adl/encode.cpp" "src/adl/CMakeFiles/onespec_adl.dir/encode.cpp.o" "gcc" "src/adl/CMakeFiles/onespec_adl.dir/encode.cpp.o.d"
  "/root/repo/src/adl/lexer.cpp" "src/adl/CMakeFiles/onespec_adl.dir/lexer.cpp.o" "gcc" "src/adl/CMakeFiles/onespec_adl.dir/lexer.cpp.o.d"
  "/root/repo/src/adl/load.cpp" "src/adl/CMakeFiles/onespec_adl.dir/load.cpp.o" "gcc" "src/adl/CMakeFiles/onespec_adl.dir/load.cpp.o.d"
  "/root/repo/src/adl/parser.cpp" "src/adl/CMakeFiles/onespec_adl.dir/parser.cpp.o" "gcc" "src/adl/CMakeFiles/onespec_adl.dir/parser.cpp.o.d"
  "/root/repo/src/adl/sema.cpp" "src/adl/CMakeFiles/onespec_adl.dir/sema.cpp.o" "gcc" "src/adl/CMakeFiles/onespec_adl.dir/sema.cpp.o.d"
  "/root/repo/src/adl/spec.cpp" "src/adl/CMakeFiles/onespec_adl.dir/spec.cpp.o" "gcc" "src/adl/CMakeFiles/onespec_adl.dir/spec.cpp.o.d"
  "/root/repo/src/adl/types.cpp" "src/adl/CMakeFiles/onespec_adl.dir/types.cpp.o" "gcc" "src/adl/CMakeFiles/onespec_adl.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/onespec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
