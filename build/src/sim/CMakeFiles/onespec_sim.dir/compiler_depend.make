# Empty compiler generated dependencies file for onespec_sim.
# This may be replaced when dependencies are built.
