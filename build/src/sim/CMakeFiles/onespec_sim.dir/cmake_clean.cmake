file(REMOVE_RECURSE
  "CMakeFiles/onespec_sim.dir/interp.cpp.o"
  "CMakeFiles/onespec_sim.dir/interp.cpp.o.d"
  "libonespec_sim.a"
  "libonespec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
