file(REMOVE_RECURSE
  "libonespec_sim.a"
)
