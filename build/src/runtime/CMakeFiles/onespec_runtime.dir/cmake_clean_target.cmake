file(REMOVE_RECURSE
  "libonespec_runtime.a"
)
