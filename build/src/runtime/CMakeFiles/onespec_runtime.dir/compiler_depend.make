# Empty compiler generated dependencies file for onespec_runtime.
# This may be replaced when dependencies are built.
