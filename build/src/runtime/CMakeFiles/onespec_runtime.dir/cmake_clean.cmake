file(REMOVE_RECURSE
  "CMakeFiles/onespec_runtime.dir/os.cpp.o"
  "CMakeFiles/onespec_runtime.dir/os.cpp.o.d"
  "CMakeFiles/onespec_runtime.dir/program.cpp.o"
  "CMakeFiles/onespec_runtime.dir/program.cpp.o.d"
  "libonespec_runtime.a"
  "libonespec_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
