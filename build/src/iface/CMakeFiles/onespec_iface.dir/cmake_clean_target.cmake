file(REMOVE_RECURSE
  "libonespec_iface.a"
)
