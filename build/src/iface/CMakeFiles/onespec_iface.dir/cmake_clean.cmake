file(REMOVE_RECURSE
  "CMakeFiles/onespec_iface.dir/functional_simulator.cpp.o"
  "CMakeFiles/onespec_iface.dir/functional_simulator.cpp.o.d"
  "CMakeFiles/onespec_iface.dir/registry.cpp.o"
  "CMakeFiles/onespec_iface.dir/registry.cpp.o.d"
  "libonespec_iface.a"
  "libonespec_iface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_iface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
