# Empty dependencies file for onespec_iface.
# This may be replaced when dependencies are built.
