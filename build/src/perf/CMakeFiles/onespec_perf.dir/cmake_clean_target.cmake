file(REMOVE_RECURSE
  "libonespec_perf.a"
)
