file(REMOVE_RECURSE
  "CMakeFiles/onespec_perf.dir/hostcount.cpp.o"
  "CMakeFiles/onespec_perf.dir/hostcount.cpp.o.d"
  "libonespec_perf.a"
  "libonespec_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
