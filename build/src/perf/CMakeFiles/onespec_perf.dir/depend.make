# Empty dependencies file for onespec_perf.
# This may be replaced when dependencies are built.
