file(REMOVE_RECURSE
  "libonespec_codegen.a"
)
