file(REMOVE_RECURSE
  "CMakeFiles/onespec_codegen.dir/cppgen.cpp.o"
  "CMakeFiles/onespec_codegen.dir/cppgen.cpp.o.d"
  "libonespec_codegen.a"
  "libonespec_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
