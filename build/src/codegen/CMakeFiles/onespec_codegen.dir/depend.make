# Empty dependencies file for onespec_codegen.
# This may be replaced when dependencies are built.
