file(REMOVE_RECURSE
  "CMakeFiles/onespec_workload.dir/assembler.cpp.o"
  "CMakeFiles/onespec_workload.dir/assembler.cpp.o.d"
  "CMakeFiles/onespec_workload.dir/builder.cpp.o"
  "CMakeFiles/onespec_workload.dir/builder.cpp.o.d"
  "CMakeFiles/onespec_workload.dir/kernels.cpp.o"
  "CMakeFiles/onespec_workload.dir/kernels.cpp.o.d"
  "libonespec_workload.a"
  "libonespec_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
