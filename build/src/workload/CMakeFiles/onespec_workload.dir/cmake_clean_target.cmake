file(REMOVE_RECURSE
  "libonespec_workload.a"
)
