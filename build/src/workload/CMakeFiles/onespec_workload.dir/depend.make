# Empty dependencies file for onespec_workload.
# This may be replaced when dependencies are built.
