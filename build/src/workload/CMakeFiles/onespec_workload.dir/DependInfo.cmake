
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/assembler.cpp" "src/workload/CMakeFiles/onespec_workload.dir/assembler.cpp.o" "gcc" "src/workload/CMakeFiles/onespec_workload.dir/assembler.cpp.o.d"
  "/root/repo/src/workload/builder.cpp" "src/workload/CMakeFiles/onespec_workload.dir/builder.cpp.o" "gcc" "src/workload/CMakeFiles/onespec_workload.dir/builder.cpp.o.d"
  "/root/repo/src/workload/kernels.cpp" "src/workload/CMakeFiles/onespec_workload.dir/kernels.cpp.o" "gcc" "src/workload/CMakeFiles/onespec_workload.dir/kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/onespec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/onespec_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/onespec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
