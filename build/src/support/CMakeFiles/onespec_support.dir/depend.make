# Empty dependencies file for onespec_support.
# This may be replaced when dependencies are built.
