file(REMOVE_RECURSE
  "CMakeFiles/onespec_support.dir/diag.cpp.o"
  "CMakeFiles/onespec_support.dir/diag.cpp.o.d"
  "CMakeFiles/onespec_support.dir/logging.cpp.o"
  "CMakeFiles/onespec_support.dir/logging.cpp.o.d"
  "CMakeFiles/onespec_support.dir/panic_exception.cpp.o"
  "CMakeFiles/onespec_support.dir/panic_exception.cpp.o.d"
  "libonespec_support.a"
  "libonespec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
