file(REMOVE_RECURSE
  "libonespec_support.a"
)
