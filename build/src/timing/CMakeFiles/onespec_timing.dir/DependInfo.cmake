
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/functional_first.cpp" "src/timing/CMakeFiles/onespec_timing.dir/functional_first.cpp.o" "gcc" "src/timing/CMakeFiles/onespec_timing.dir/functional_first.cpp.o.d"
  "/root/repo/src/timing/sampling.cpp" "src/timing/CMakeFiles/onespec_timing.dir/sampling.cpp.o" "gcc" "src/timing/CMakeFiles/onespec_timing.dir/sampling.cpp.o.d"
  "/root/repo/src/timing/spec_ff.cpp" "src/timing/CMakeFiles/onespec_timing.dir/spec_ff.cpp.o" "gcc" "src/timing/CMakeFiles/onespec_timing.dir/spec_ff.cpp.o.d"
  "/root/repo/src/timing/timing_directed.cpp" "src/timing/CMakeFiles/onespec_timing.dir/timing_directed.cpp.o" "gcc" "src/timing/CMakeFiles/onespec_timing.dir/timing_directed.cpp.o.d"
  "/root/repo/src/timing/timing_first.cpp" "src/timing/CMakeFiles/onespec_timing.dir/timing_first.cpp.o" "gcc" "src/timing/CMakeFiles/onespec_timing.dir/timing_first.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iface/CMakeFiles/onespec_iface.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/onespec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/onespec_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/onespec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
