file(REMOVE_RECURSE
  "libonespec_timing.a"
)
