# Empty compiler generated dependencies file for onespec_timing.
# This may be replaced when dependencies are built.
