file(REMOVE_RECURSE
  "CMakeFiles/onespec_timing.dir/functional_first.cpp.o"
  "CMakeFiles/onespec_timing.dir/functional_first.cpp.o.d"
  "CMakeFiles/onespec_timing.dir/sampling.cpp.o"
  "CMakeFiles/onespec_timing.dir/sampling.cpp.o.d"
  "CMakeFiles/onespec_timing.dir/spec_ff.cpp.o"
  "CMakeFiles/onespec_timing.dir/spec_ff.cpp.o.d"
  "CMakeFiles/onespec_timing.dir/timing_directed.cpp.o"
  "CMakeFiles/onespec_timing.dir/timing_directed.cpp.o.d"
  "CMakeFiles/onespec_timing.dir/timing_first.cpp.o"
  "CMakeFiles/onespec_timing.dir/timing_first.cpp.o.d"
  "libonespec_timing.a"
  "libonespec_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
