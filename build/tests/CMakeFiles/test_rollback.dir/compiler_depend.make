# Empty compiler generated dependencies file for test_rollback.
# This may be replaced when dependencies are built.
