file(REMOVE_RECURSE
  "CMakeFiles/test_rollback.dir/test_rollback.cpp.o"
  "CMakeFiles/test_rollback.dir/test_rollback.cpp.o.d"
  "test_rollback"
  "test_rollback.pdb"
  "test_rollback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rollback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
