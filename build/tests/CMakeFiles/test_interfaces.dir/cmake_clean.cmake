file(REMOVE_RECURSE
  "CMakeFiles/test_interfaces.dir/test_interfaces.cpp.o"
  "CMakeFiles/test_interfaces.dir/test_interfaces.cpp.o.d"
  "test_interfaces"
  "test_interfaces.pdb"
  "test_interfaces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
