# Empty compiler generated dependencies file for test_interfaces.
# This may be replaced when dependencies are built.
