file(REMOVE_RECURSE
  "CMakeFiles/test_alpha64.dir/test_alpha64.cpp.o"
  "CMakeFiles/test_alpha64.dir/test_alpha64.cpp.o.d"
  "test_alpha64"
  "test_alpha64.pdb"
  "test_alpha64[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alpha64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
