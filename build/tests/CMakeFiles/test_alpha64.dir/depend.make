# Empty dependencies file for test_alpha64.
# This may be replaced when dependencies are built.
