# Empty compiler generated dependencies file for test_ppc32.
# This may be replaced when dependencies are built.
