file(REMOVE_RECURSE
  "CMakeFiles/test_ppc32.dir/test_ppc32.cpp.o"
  "CMakeFiles/test_ppc32.dir/test_ppc32.cpp.o.d"
  "test_ppc32"
  "test_ppc32.pdb"
  "test_ppc32[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppc32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
