file(REMOVE_RECURSE
  "CMakeFiles/test_generated.dir/test_generated.cpp.o"
  "CMakeFiles/test_generated.dir/test_generated.cpp.o.d"
  "test_generated"
  "test_generated.pdb"
  "test_generated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
