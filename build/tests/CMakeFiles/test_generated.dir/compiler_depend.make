# Empty compiler generated dependencies file for test_generated.
# This may be replaced when dependencies are built.
