# Empty dependencies file for test_arm32.
# This may be replaced when dependencies are built.
