file(REMOVE_RECURSE
  "CMakeFiles/test_arm32.dir/test_arm32.cpp.o"
  "CMakeFiles/test_arm32.dir/test_arm32.cpp.o.d"
  "test_arm32"
  "test_arm32.pdb"
  "test_arm32[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arm32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
