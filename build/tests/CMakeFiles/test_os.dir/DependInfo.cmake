
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_os.cpp" "tests/CMakeFiles/test_os.dir/test_os.cpp.o" "gcc" "tests/CMakeFiles/test_os.dir/test_os.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/onespec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/onespec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/onespec_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/onespec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/iface/CMakeFiles/onespec_iface.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
