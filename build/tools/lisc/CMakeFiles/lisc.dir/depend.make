# Empty dependencies file for lisc.
# This may be replaced when dependencies are built.
