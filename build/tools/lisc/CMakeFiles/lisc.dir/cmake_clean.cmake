file(REMOVE_RECURSE
  "CMakeFiles/lisc.dir/main.cpp.o"
  "CMakeFiles/lisc.dir/main.cpp.o.d"
  "lisc"
  "lisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
