file(REMOVE_RECURSE
  "libonespec_gen.a"
)
