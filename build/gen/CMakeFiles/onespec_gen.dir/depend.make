# Empty dependencies file for onespec_gen.
# This may be replaced when dependencies are built.
