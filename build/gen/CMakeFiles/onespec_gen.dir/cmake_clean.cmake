file(REMOVE_RECURSE
  "../generated/gen_alpha64.cpp"
  "../generated/gen_arm32.cpp"
  "../generated/gen_ppc32.cpp"
  "CMakeFiles/onespec_gen.dir/__/generated/gen_alpha64.cpp.o"
  "CMakeFiles/onespec_gen.dir/__/generated/gen_alpha64.cpp.o.d"
  "CMakeFiles/onespec_gen.dir/__/generated/gen_arm32.cpp.o"
  "CMakeFiles/onespec_gen.dir/__/generated/gen_arm32.cpp.o.d"
  "CMakeFiles/onespec_gen.dir/__/generated/gen_ppc32.cpp.o"
  "CMakeFiles/onespec_gen.dir/__/generated/gen_ppc32.cpp.o.d"
  "libonespec_gen.a"
  "libonespec_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onespec_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
