/**
 * @file
 * Sampled microarchitecture simulation (SMARTS-style): detailed pipeline
 * windows + functional fast-forward, the paper's canonical case for a
 * second, low-detail interface.  Sweeps the sampling period and shows the
 * CPI estimate converging while wall time falls.
 *
 *   $ sampling_explorer [isa] [kernel]
 */

#include <cstdio>
#include <string>

#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "perf/hostcount.hpp"
#include "runtime/context.hpp"
#include "timing/sampling.hpp"
#include "workload/kernels.hpp"

using namespace onespec;

int
main(int argc, char **argv)
{
    std::string isa = argc > 1 ? argv[1] : "ppc32";
    std::string kernel = argc > 2 ? argv[2] : "strhash";

    auto spec = loadIsa(isa);
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, kernel, 60000);
    uint64_t max_instrs = 8'000'000;

    // Reference: fully detailed run.
    double ref_cpi;
    uint64_t ref_ns;
    {
        SimContext ctx(*spec);
        ctx.load(prog);
        auto det = SimRegistry::instance().create(ctx, "StepAllNo");
        TimingDirectedPipeline pipe(*spec);
        Stopwatch sw;
        sw.start();
        TimingStats st = pipe.run(*det, max_instrs);
        ref_ns = sw.elapsedNs();
        ref_cpi = st.instrs ? static_cast<double>(st.cycles) / st.instrs
                            : 0.0;
        std::printf("reference (all detailed): CPI %.3f over %llu "
                    "instrs, %.2fs\n\n",
                    ref_cpi, static_cast<unsigned long long>(st.instrs),
                    ref_ns / 1e9);
    }

    std::printf("%-12s %10s %10s %12s %10s %10s\n", "period", "windows",
                "CPI est", "CPI err", "time", "speedup");
    for (uint64_t period :
         {5'000ull, 20'000ull, 100'000ull, 500'000ull}) {
        SimContext ctx(*spec);
        ctx.load(prog);
        auto det = SimRegistry::instance().create(ctx, "StepAllNo");
        auto fast = SimRegistry::instance().create(ctx, "BlockMinNo");
        SamplingConfig cfg;
        cfg.windowInstrs = 1000;
        cfg.periodInstrs = period;
        Stopwatch sw;
        sw.start();
        SamplingStats st =
            runSampled(*spec, *det, *fast, cfg, max_instrs);
        uint64_t ns = sw.elapsedNs();
        double cpi = st.estimatedCpi();
        std::printf("%-12llu %10llu %10.3f %11.1f%% %9.2fs %9.1fx\n",
                    static_cast<unsigned long long>(period),
                    static_cast<unsigned long long>(st.windows), cpi,
                    ref_cpi ? 100.0 * (cpi - ref_cpi) / ref_cpi : 0.0,
                    ns / 1e9,
                    ns ? static_cast<double>(ref_ns) / ns : 0.0);
    }
    std::printf("\nFast-forwarding through the low-detail interface "
                "keeps the CPI estimate close while cutting\n"
                "simulation time -- and both interfaces were derived "
                "from one specification.\n");
    return 0;
}
