/**
 * @file
 * Quickstart: load an ISA description, assemble a program through the
 * derived assembler, create a synthesized functional simulator for one
 * interface, and run.
 *
 *   $ quickstart [isa] [kernel]
 */

#include <cstdio>
#include <string>

#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "perf/hostcount.hpp"
#include "runtime/context.hpp"
#include "workload/kernels.hpp"

using namespace onespec;

int
main(int argc, char **argv)
{
    std::string isa = argc > 1 ? argv[1] : "alpha64";
    std::string kernel = argc > 2 ? argv[2] : "fib";

    // 1. Load the single specification (ISA + OS support + interfaces).
    auto spec = loadIsa(isa);
    std::printf("loaded %s: %zu instructions, %zu interfaces\n",
                spec->props.name.c_str(), spec->instrs.size(),
                spec->buildsets.size());

    // 2. Build a program with the assembler derived from the same
    //    specification.
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, kernel, 100000);
    std::printf("assembled %s: %zu bytes of code\n", kernel.c_str(),
                prog.segments[0].bytes.size());

    // 3. Create a simulated machine and a synthesized simulator for the
    //    One/All/No interface (the recommended debugging interface).
    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = SimRegistry::instance().create(ctx, "OneAllNo");
    if (!sim) {
        std::fprintf(stderr, "no synthesized simulator registered\n");
        return 1;
    }

    // 4. Run and report.
    Stopwatch sw;
    sw.start();
    RunResult rr = sim->run(1'000'000'000);
    uint64_t ns = sw.elapsedNs();

    std::printf("status: %s after %llu instructions\n",
                rr.status == RunStatus::Halted ? "exited" : "stopped",
                static_cast<unsigned long long>(rr.instrs));
    std::printf("program output: %s", ctx.os().output().c_str());
    std::printf("exit code: %d\n", ctx.os().exitCode());
    std::printf("speed: %.1f MIPS\n",
                ns ? 1000.0 * static_cast<double>(rr.instrs) /
                         static_cast<double>(ns)
                   : 0.0);
    return 0;
}
