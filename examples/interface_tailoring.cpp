/**
 * @file
 * The development-effort story of the paper, live: define a brand-new
 * tailored interface in a couple of lines of LIS, analyze it at run time,
 * and execute through the interpreter back end that honors any buildset
 * -- no resynthesis needed for experimentation (synthesize with lisc once
 * the interface settles).
 *
 *   $ interface_tailoring [isa]
 */

#include <cstdio>
#include <string>

#include "adl/load.hpp"
#include "adl/parser.hpp"
#include "adl/sema.hpp"
#include "isa/isa.hpp"
#include "perf/hostcount.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "workload/kernels.hpp"

using namespace onespec;

namespace {

/** The "new interface": everything hidden except branch resolution. */
const char *kNewInterface = R"(
# A timing model that only studies branch prediction needs just branch
# resolution information, delivered one basic block at a time:
buildset BranchStudy {
    semantic block;
    visibility show branch_taken, branch_target;
    speculation off;
}
)";

} // namespace

int
main(int argc, char **argv)
{
    std::string isa = argc > 1 ? argv[1] : "alpha64";

    // Parse the shipped description files PLUS the new interface text.
    std::vector<SourceFile> files;
    for (const auto &p : isaDescriptionFiles(isa))
        files.push_back({readFileOrFatal(p), p});
    files.push_back({kNewInterface, "<new-interface>"});

    DiagnosticEngine diags;
    Description desc = parseFiles(files, diags);
    auto spec = analyze(std::move(desc), diags);
    if (diags.hasErrors()) {
        std::fprintf(stderr, "%s", diags.str().c_str());
        return 1;
    }
    const BuildsetInfo *bs = spec->findBuildset("BranchStudy");
    std::printf("defined interface '%s' in %d lines of LIS: "
                "%d of %zu fields visible, %zu entrypoint(s)\n",
                bs->name.c_str(), 5,
                __builtin_popcountll(bs->visibleSlots),
                spec->slots.size(), bs->entrypoints.size());

    // Use it immediately: measure taken-branch fraction per kernel.
    int taken_h = spec->findSlot("branch_taken");
    std::printf("\n%-12s %12s %12s %10s\n", "kernel", "instrs",
                "branches", "taken");
    for (const auto &k : kernelNames()) {
        uint64_t param = k == "matmul" ? 24 : k == "shellsort" ? 2000
                                            : 20000;
        auto b = makeBuilder(*spec);
        Program prog = buildKernel(*b, k, param);
        SimContext ctx(*spec);
        ctx.load(prog);
        InterpSimulator sim(ctx, *bs);

        uint64_t instrs = 0, branches = 0, taken = 0;
        DynInst block[64];
        RunStatus st = RunStatus::Ok;
        while (st == RunStatus::Ok && instrs < 3'000'000) {
            unsigned n = sim.executeBlock(block, 64, st);
            instrs += n;
            for (unsigned i = 0; i < n; ++i) {
                if (block[i].slotWritten(taken_h)) {
                    ++branches;
                    taken += block[i].vals[taken_h] ? 1 : 0;
                }
            }
            if (n == 0)
                break;
        }
        std::printf("%-12s %12llu %12llu %9.1f%%\n", k.c_str(),
                    static_cast<unsigned long long>(instrs),
                    static_cast<unsigned long long>(branches),
                    branches ? 100.0 * taken / branches : 0.0);
    }

    std::printf("\nThe same buildset text dropped into "
                "src/isa/descriptions/buildsets.lis and re-run through\n"
                "lisc synthesizes a specialized C++ simulator for it -- "
                "the paper's minutes-per-interface claim.\n");
    return 0;
}
