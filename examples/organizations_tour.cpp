/**
 * @file
 * A tour of the decoupled microarchitectural simulator organizations of
 * the paper's Figure 1, each running the same workload on the interface
 * level of detail it needs:
 *
 *   functional-first            Block semantic / Decode info
 *   timing-directed             Step semantic / All info
 *   timing-first                One semantic / Min info (+ checker)
 *   speculative functional-first Block semantic / Decode info / spec on
 *
 *   $ organizations_tour [isa] [kernel] [instrs]
 */

#include <cstdio>
#include <string>

#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "runtime/context.hpp"
#include "timing/functional_first.hpp"
#include "timing/spec_ff.hpp"
#include "timing/timing_directed.hpp"
#include "timing/timing_first.hpp"
#include "workload/kernels.hpp"

using namespace onespec;

int
main(int argc, char **argv)
{
    std::string isa = argc > 1 ? argv[1] : "alpha64";
    std::string kernel = argc > 2 ? argv[2] : "sieve";
    uint64_t max_instrs =
        argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 2'000'000;

    auto spec = loadIsa(isa);
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, kernel, 100000);

    std::printf("%s / %s, up to %llu instructions per organization\n\n",
                isa.c_str(), kernel.c_str(),
                static_cast<unsigned long long>(max_instrs));
    std::printf("%-28s %12s %8s %10s %10s %8s\n", "organization",
                "cycles", "IPC", "dL1 miss", "mispred", "extra");

    // ---- functional-first (Block/Decode interface)
    {
        SimContext ctx(*spec);
        ctx.load(prog);
        auto sim = SimRegistry::instance().create(ctx, "BlockDecNo");
        FunctionalFirstModel model(*spec);
        TimingStats st = model.run(*sim, max_instrs);
        std::printf("%-28s %12llu %8.3f %10llu %10llu %8s\n",
                    "functional-first",
                    static_cast<unsigned long long>(st.cycles), st.ipc(),
                    static_cast<unsigned long long>(st.dcacheMisses),
                    static_cast<unsigned long long>(st.mispredicts), "-");
    }

    // ---- timing-directed (Step/All interface)
    {
        SimContext ctx(*spec);
        ctx.load(prog);
        auto sim = SimRegistry::instance().create(ctx, "StepAllNo");
        TimingDirectedPipeline pipe(*spec);
        TimingStats st = pipe.run(*sim, max_instrs);
        std::printf("%-28s %12llu %8.3f %10llu %10llu %8s\n",
                    "timing-directed",
                    static_cast<unsigned long long>(st.cycles), st.ipc(),
                    static_cast<unsigned long long>(st.dcacheMisses),
                    static_cast<unsigned long long>(st.mispredicts), "-");
    }

    // ---- timing-first (checker catches injected timing-model bugs)
    {
        SimContext tctx(*spec), cctx(*spec);
        tctx.load(prog);
        cctx.load(prog);
        auto timing = SimRegistry::instance().create(tctx, "OneMinNo");
        auto checker = SimRegistry::instance().create(cctx, "OneMinNo");
        TimingFirstConfig cfg;
        cfg.injectBugEvery = 50'000;
        TimingFirstModel model(cfg);
        TimingStats st = model.run(*timing, *checker, max_instrs);
        char extra[32];
        std::snprintf(extra, sizeof(extra), "%llu mism",
                      static_cast<unsigned long long>(st.mismatches));
        std::printf("%-28s %12llu %8.3f %10s %10s %8s\n", "timing-first",
                    static_cast<unsigned long long>(st.cycles), st.ipc(),
                    "-", "-", extra);
    }

    // ---- speculative functional-first (rollback on declared violations)
    {
        SimContext ctx(*spec);
        ctx.load(prog);
        auto sim = SimRegistry::instance().create(ctx, "BlockDecYes");
        SpecFFConfig cfg;
        cfg.violationEvery = 25'000;
        cfg.squashDepth = 32;
        SpecFunctionalFirstModel model(cfg);
        TimingStats st = model.run(*sim, max_instrs);
        char extra[32];
        std::snprintf(extra, sizeof(extra), "%llu rb",
                      static_cast<unsigned long long>(st.rollbacks));
        std::printf("%-28s %12llu %8.3f %10s %10s %8s\n",
                    "spec functional-first",
                    static_cast<unsigned long long>(st.cycles), st.ipc(),
                    "-", "-", extra);
    }

    std::printf("\nEach organization used a different interface of the "
                "same single specification --\nno functional simulator "
                "code was written per organization.\n");
    return 0;
}
